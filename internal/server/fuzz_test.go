package server

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadCommand throws arbitrary byte streams at the command parser. The
// invariants: never panic, never return a command with zero args, never
// return an argument over the bulk limit, and classify every failure as
// clean EOF, truncation, protocol violation, or an oversized line. Parsed
// commands must also re-encode and re-parse to the same arguments
// (round-trip stability), since the server echoes keys back into replies.
//
// Seed corpus lives in testdata/fuzz/FuzzReadCommand; go test runs the
// seeds on every invocation, `go test -fuzz=FuzzReadCommand` explores.
func FuzzReadCommand(f *testing.F) {
	seeds := [][]byte{
		[]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"),
		[]byte("*1\r\n$4\r\nPING\r\n"),
		[]byte("PING\r\n"),
		[]byte("SET key value\r\n"),
		[]byte("\r\nGET after-blank\r\n"),
		[]byte("*2\r\n$4\r\nECHO\r\n$0\r\n\r\n"),
		[]byte("*-1\r\n"),
		[]byte("*0\r\n"),
		[]byte("*1\r\n$-1\r\n"),
		[]byte("*1\r\n$16777217\r\nx"),
		[]byte("*99999999\r\n"),
		[]byte("*1\r\n$3\r\nab"),
		[]byte("*2\r\n$3\r\nGET\r\n:42\r\n"),
		[]byte("*1\r\n$3\r\nabcXY"),
		[]byte("$5\r\nhello\r\n"),
		[]byte("*1\r\n$0x3\r\nabc\r\n"),
		bytes.Repeat([]byte("a"), 70000), // inline line over the cap, no newline
		[]byte("*1\r\n$5\r\nMULTI\r\n"),
		[]byte("*2\r\n$4\r\nINCR\r\n$3\r\nctr\r\n"),
		[]byte("*3\r\n$6\r\nINCRBY\r\n$3\r\nctr\r\n$3\r\n-17\r\n"),
		[]byte("*4\r\n$3\r\nCAS\r\n$1\r\nk\r\n$0\r\n\r\n$4\r\ninit\r\n"),
		[]byte("*3\r\n$6\r\nAPPEND\r\n$3\r\nlog\r\n$2\r\nab\r\n"),
		[]byte("*1\r\n$4\r\nEXEC\r\n"),
		[]byte("*1\r\n$7\r\nDISCARD\r\n"),
		[]byte("MULTI\r\nSET a 1\r\nSET b 2\r\nEXEC\r\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRespReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bound pipelined commands per input
			args, err := r.ReadCommand()
			if err != nil {
				if !errors.Is(err, io.EOF) &&
					!errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrProtocol) {
					t.Fatalf("unclassified error: %v", err)
				}
				return
			}
			if len(args) == 0 {
				t.Fatal("parser returned an empty command")
			}
			for _, a := range args {
				if len(a) > MaxBulk {
					t.Fatalf("argument of %d bytes exceeds MaxBulk", len(a))
				}
			}
			roundTripCommand(t, args)
		}
	})
}

// roundTripCommand re-encodes args as a RESP array and verifies the parser
// reproduces them exactly.
func roundTripCommand(t *testing.T, args [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w := newRespWriter(&buf)
	w.WriteArrayHeader(len(args))
	for _, a := range args {
		w.WriteBulk(a)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := newRespReader(&buf).ReadCommand()
	if err != nil {
		t.Fatalf("re-parse of %q: %v", args, err)
	}
	if len(got) != len(args) {
		t.Fatalf("round trip changed arity: %d vs %d", len(got), len(args))
	}
	for i := range args {
		if !bytes.Equal(got[i], args[i]) {
			t.Fatalf("round trip changed arg %d: %q vs %q", i, got[i], args[i])
		}
	}
}

// FuzzReadReply does the same for the reply parser the client uses — a
// hostile server must not crash anykeycli.
func FuzzReadReply(f *testing.F) {
	for _, s := range [][]byte{
		[]byte("+OK\r\n"),
		[]byte("-ERR boom\r\n"),
		[]byte(":42\r\n"),
		[]byte("$5\r\nhello\r\n"),
		[]byte("$-1\r\n"),
		[]byte("*-1\r\n"),
		[]byte("*2\r\n$1\r\na\r\n:3\r\n"),
		[]byte("*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n:1\r\n"),
		[]byte("?weird\r\n"),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRespReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			_, err := r.ReadReply()
			if err != nil {
				if !errors.Is(err, io.EOF) &&
					!errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrProtocol) {
					t.Fatalf("unclassified error: %v", err)
				}
				return
			}
		}
	})
}
