// Package server implements anykeyserver: a RESP2 wire-protocol front end
// for an anykey cluster. Real TCP clients (redis-cli, anykeycli net, any
// Redis client library) speak GET/SET/DEL/MGET/MSET/SCAN against the
// simulated fleet, while a wall-clock bridge maps each request's real
// arrival time onto the owning shard's virtual clock domain and submits it
// through the open-loop engine path. A hand-rolled Prometheus endpoint
// exposes the simulation's internals live.
//
// The package splits into three layers:
//
//   - resp.go: the wire format — a respReader that parses client commands
//     (RESP arrays of bulk strings, plus inline commands) and server
//     replies, and a respWriter that renders every RESP2 reply kind.
//   - bridge.go: the wall-clock→virtual-time bridge — one goroutine-owned
//     event loop per shard, bounded inflight, shedding and timeouts.
//   - server.go: the TCP accept loop, per-connection command dispatch with
//     pipelining, the metrics/health endpoints and graceful shutdown.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Wire-format limits. A peer that exceeds one gets a protocol error and its
// connection closed — they bound memory per connection, not the database.
const (
	// MaxBulk bounds one bulk string (a key or value) on the wire.
	MaxBulk = 8 << 20
	// MaxArray bounds the element count of one command array.
	MaxArray = 1 << 16
	// maxInline bounds one inline command line, CRLF excluded.
	maxInline = 64 << 10
	// maxReplyDepth bounds array nesting when parsing server replies.
	maxReplyDepth = 8
)

// ErrProtocol reports a malformed RESP frame. Everything the reader rejects
// wraps it, so callers can distinguish "peer speaks garbage" from I/O errors.
var ErrProtocol = errors.New("resp: protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// respReader decodes RESP frames from a stream. It reads both directions of
// the protocol: ReadCommand for what clients send, ReadReply for what
// servers answer.
type respReader struct {
	br *bufio.Reader
}

func newRespReader(r io.Reader) *respReader {
	return &respReader{br: bufio.NewReader(r)}
}

// buffered reports how many decoded-but-unread bytes are pending. The
// connection loop uses it to flush replies only when the client has no
// further pipelined commands already in the buffer.
func (r *respReader) buffered() int { return r.br.Buffered() }

// readLine reads one CRLF- (or bare-LF-) terminated line of at most max
// bytes, terminator stripped.
func (r *respReader) readLine(max int) ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Slow path: the line spans the buffer. Accumulate with a hard cap.
		buf := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			if len(buf) > max {
				return nil, protoErrf("line exceeds %d bytes", max)
			}
			line, err = r.br.ReadSlice('\n')
			buf = append(buf, line...)
		}
		line = buf
	}
	if err != nil {
		return nil, err
	}
	if len(line) > max+2 {
		return nil, protoErrf("line exceeds %d bytes", max)
	}
	line = line[:len(line)-1] // strip \n
	line = bytes.TrimSuffix(line, []byte{'\r'})
	return line, nil
}

// ReadCommand parses one client command: a RESP array of bulk strings
// (*N\r\n then N of $len\r\n<bytes>\r\n), or an inline command — a single
// line of space-separated words, as redis-cli sends for hand-typed input.
// Blank inline lines are skipped. Returns io.EOF at a clean end of stream.
func (r *respReader) ReadCommand() ([][]byte, error) {
	for {
		first, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if first != '*' {
			if err := r.br.UnreadByte(); err != nil {
				return nil, err
			}
			args, err := r.readInline()
			if err != nil {
				return nil, err
			}
			if args == nil {
				continue // blank line between inline commands
			}
			return args, nil
		}
		return r.readArrayOfBulks()
	}
}

func (r *respReader) readInline() ([][]byte, error) {
	line, err := r.readLine(maxInline)
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return nil, nil
	}
	args := make([][]byte, len(fields))
	for i, f := range fields {
		args[i] = append([]byte(nil), f...)
	}
	return args, nil
}

// readArrayOfBulks parses the body of a command array; the leading '*' has
// already been consumed.
func (r *respReader) readArrayOfBulks() ([][]byte, error) {
	n, err := r.readInt(r.mustLine())
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, protoErrf("null array as command")
	}
	if n == 0 {
		return nil, protoErrf("empty command array")
	}
	if n > MaxArray {
		return nil, protoErrf("array of %d elements exceeds limit %d", n, MaxArray)
	}
	args := make([][]byte, 0, n)
	for i := int64(0); i < n; i++ {
		b, err := r.readBulk()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, protoErrf("null bulk inside command")
		}
		args = append(args, b)
	}
	return args, nil
}

// mustLine adapts readLine to the (value, error) pair readInt consumes.
func (r *respReader) mustLine() ([]byte, error) {
	return r.readLine(maxInline)
}

func (r *respReader) readInt(line []byte, err error) (int64, error) {
	if err != nil {
		return 0, err
	}
	n, perr := strconv.ParseInt(string(line), 10, 64)
	if perr != nil {
		return 0, protoErrf("bad integer %q", line)
	}
	return n, nil
}

// readBulk parses one $len\r\n<bytes>\r\n frame; the returned slice is a
// fresh copy. A null bulk ($-1) returns (nil, nil).
func (r *respReader) readBulk() ([]byte, error) {
	first, err := r.br.ReadByte()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if first != '$' {
		return nil, protoErrf("expected bulk string, got %q", first)
	}
	n, err := r.readInt(r.mustLine())
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if n == -1 {
		return nil, nil
	}
	if n < 0 || n > MaxBulk {
		return nil, protoErrf("bulk length %d out of range [0, %d]", n, MaxBulk)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, unexpectedEOF(err)
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, protoErrf("bulk string missing CRLF terminator")
	}
	return buf[:n:n], nil
}

// unexpectedEOF upgrades a mid-frame EOF: a stream that ends inside a frame
// is a truncation error, not a clean close.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Reply is one decoded RESP2 server reply.
type Reply struct {
	// Kind is the RESP type byte: '+', '-', ':', '$' or '*'.
	Kind byte
	// Str holds the text of a simple string ('+') or error ('-').
	Str string
	// Int holds the value of an integer reply (':').
	Int int64
	// Bulk holds the payload of a bulk string ('$'); nil only when Null.
	Bulk []byte
	// Array holds the elements of an array reply ('*'); nil only when Null.
	Array []Reply
	// Null marks a null bulk ($-1) or null array (*-1).
	Null bool
}

// Err returns the reply as an error when it is an error reply.
func (rp Reply) Err() error {
	if rp.Kind == '-' {
		return errors.New(rp.Str)
	}
	return nil
}

// Text renders the reply for human consumption (anykeycli net's REPL).
func (rp Reply) Text() string {
	switch rp.Kind {
	case '+':
		return rp.Str
	case '-':
		return "(error) " + rp.Str
	case ':':
		return strconv.FormatInt(rp.Int, 10)
	case '$':
		if rp.Null {
			return "(nil)"
		}
		return string(rp.Bulk)
	case '*':
		if rp.Null {
			return "(nil)"
		}
		var sb []byte
		for i, el := range rp.Array {
			if i > 0 {
				sb = append(sb, '\n')
			}
			sb = append(sb, fmt.Sprintf("%d) %s", i+1, el.Text())...)
		}
		return string(sb)
	}
	return fmt.Sprintf("(unknown reply kind %q)", rp.Kind)
}

// ReadReply parses one server reply, recursing into arrays.
func (r *respReader) ReadReply() (Reply, error) {
	return r.readReplyDepth(0)
}

func (r *respReader) readReplyDepth(depth int) (Reply, error) {
	if depth > maxReplyDepth {
		return Reply{}, protoErrf("reply nesting exceeds %d", maxReplyDepth)
	}
	first, err := r.br.ReadByte()
	if err != nil {
		if depth > 0 {
			return Reply{}, unexpectedEOF(err)
		}
		return Reply{}, err
	}
	switch first {
	case '+', '-':
		line, err := r.readLine(maxInline)
		if err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		return Reply{Kind: first, Str: string(line)}, nil
	case ':':
		n, err := r.readInt(r.mustLine())
		if err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		return Reply{Kind: ':', Int: n}, nil
	case '$':
		if err := r.br.UnreadByte(); err != nil {
			return Reply{}, err
		}
		b, err := r.readBulk()
		if err != nil {
			return Reply{}, err
		}
		if b == nil {
			return Reply{Kind: '$', Null: true}, nil
		}
		return Reply{Kind: '$', Bulk: b}, nil
	case '*':
		n, err := r.readInt(r.mustLine())
		if err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		if n == -1 {
			return Reply{Kind: '*', Null: true}, nil
		}
		if n < 0 || n > MaxArray {
			return Reply{}, protoErrf("array of %d elements exceeds limit %d", n, MaxArray)
		}
		els := make([]Reply, 0, n)
		for i := int64(0); i < n; i++ {
			el, err := r.readReplyDepth(depth + 1)
			if err != nil {
				return Reply{}, err
			}
			els = append(els, el)
		}
		return Reply{Kind: '*', Array: els}, nil
	}
	return Reply{}, protoErrf("unknown reply type byte %q", first)
}

// respWriter renders RESP2 frames onto a buffered stream. Callers batch
// writes and Flush at pipeline boundaries.
type respWriter struct {
	bw *bufio.Writer
}

func newRespWriter(w io.Writer) *respWriter {
	return &respWriter{bw: bufio.NewWriter(w)}
}

// sanitizeLine strips CR/LF so simple strings and errors stay one frame.
func sanitizeLine(s string) string {
	if !strings.ContainsAny(s, "\r\n") {
		return s
	}
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\r' || s[i] == '\n' {
			b = append(b, ' ')
			continue
		}
		b = append(b, s[i])
	}
	return string(b)
}

func (w *respWriter) WriteSimple(s string) {
	w.bw.WriteByte('+')
	w.bw.WriteString(sanitizeLine(s))
	w.bw.WriteString("\r\n")
}

func (w *respWriter) WriteError(msg string) {
	w.bw.WriteByte('-')
	w.bw.WriteString(sanitizeLine(msg))
	w.bw.WriteString("\r\n")
}

func (w *respWriter) WriteInt(n int64) {
	w.bw.WriteByte(':')
	w.bw.WriteString(strconv.FormatInt(n, 10))
	w.bw.WriteString("\r\n")
}

// WriteBulk writes a bulk string; nil writes the RESP null bulk ($-1).
func (w *respWriter) WriteBulk(b []byte) {
	if b == nil {
		w.bw.WriteString("$-1\r\n")
		return
	}
	w.bw.WriteByte('$')
	w.bw.WriteString(strconv.Itoa(len(b)))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

func (w *respWriter) WriteBulkString(s string) {
	w.bw.WriteByte('$')
	w.bw.WriteString(strconv.Itoa(len(s)))
	w.bw.WriteString("\r\n")
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

func (w *respWriter) WriteArrayHeader(n int) {
	w.bw.WriteByte('*')
	w.bw.WriteString(strconv.Itoa(n))
	w.bw.WriteString("\r\n")
}

func (w *respWriter) Flush() error { return w.bw.Flush() }
