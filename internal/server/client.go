package server

import (
	"bufio"
	"net"
	"time"
)

// Client is a minimal RESP2 client for anykeyserver: enough for the
// anykeycli net subcommand, the CI smoke job and the integration tests.
// It is not safe for concurrent use; open one Client per goroutine.
type Client struct {
	conn net.Conn
	r    *respReader
	bw   *bufio.Writer

	// pending counts commands sent but not yet received, for pipelining.
	pending int
}

// Dial connects to an anykeyserver at addr ("host:port") with the given
// timeout on the TCP connect (zero means no timeout).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		r:    newRespReader(conn),
		bw:   bufio.NewWriter(conn),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetDeadline bounds every subsequent read and write on the connection.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// writeCommand renders one command as a RESP array of bulk strings.
func (c *Client) writeCommand(args [][]byte) error {
	c.bw.WriteByte('*')
	writeIntLine(c.bw, int64(len(args)))
	for _, a := range args {
		c.bw.WriteByte('$')
		writeIntLine(c.bw, int64(len(a)))
		c.bw.Write(a)
		c.bw.WriteString("\r\n")
	}
	return nil
}

func writeIntLine(bw *bufio.Writer, n int64) {
	var buf [24]byte
	b := buf[:0]
	if n < 0 {
		bw.WriteByte('-')
		n = -n
	}
	if n == 0 {
		b = append(b, '0')
	}
	var digits [20]byte
	i := len(digits)
	for n > 0 {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
	}
	b = append(b, digits[i:]...)
	bw.Write(b)
	bw.WriteString("\r\n")
}

// Send queues one command without flushing — the pipelined half of the API.
// Follow a batch of Sends with Flush and matching Receives.
func (c *Client) Send(args ...string) error {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.SendBytes(bs)
}

// SendBytes is Send for callers that already hold byte slices.
func (c *Client) SendBytes(args [][]byte) error {
	if err := c.writeCommand(args); err != nil {
		return err
	}
	c.pending++
	return nil
}

// Flush pushes every queued command onto the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Receive reads one reply for a previously Sent command.
func (c *Client) Receive() (Reply, error) {
	rp, err := c.r.ReadReply()
	if err == nil && c.pending > 0 {
		c.pending--
	}
	return rp, err
}

// Pending reports queued-but-unanswered commands.
func (c *Client) Pending() int { return c.pending }

// Do sends one command, flushes, and reads its reply — the synchronous half
// of the API. An error reply is returned as a Reply with Kind '-', not as
// an error; the error return covers transport and protocol failures only.
func (c *Client) Do(args ...string) (Reply, error) {
	if err := c.Send(args...); err != nil {
		return Reply{}, err
	}
	return c.flushReceive()
}

// DoBytes is Do for callers that already hold byte slices.
func (c *Client) DoBytes(args [][]byte) (Reply, error) {
	if err := c.SendBytes(args); err != nil {
		return Reply{}, err
	}
	return c.flushReceive()
}

func (c *Client) flushReceive() (Reply, error) {
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Receive()
}
