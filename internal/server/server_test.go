package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"anykey"
)

func testConfig() Config {
	return Config{
		Addr:        "127.0.0.1:0",
		MetricsAddr: "127.0.0.1:0",
		Cluster: anykey.ClusterOptions{
			Shards:     4,
			QueueDepth: 8,
			Device:     anykey.Options{CapacityMB: 16, Channels: 4, ChipsPerChannel: 4},
		},
	}
}

// startServer runs a server in the background and tears it down with the
// test. It returns the server and its RESP address.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, s.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeadline(time.Now().Add(10 * time.Second))
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerRoundTrip(t *testing.T) {
	_, addr := startServer(t, testConfig())
	c := dialT(t, addr)

	if rp, err := c.Do("PING"); err != nil || rp.Str != "PONG" {
		t.Fatalf("PING: %+v, %v", rp, err)
	}
	if rp, err := c.Do("ECHO", "hello"); err != nil || string(rp.Bulk) != "hello" {
		t.Fatalf("ECHO: %+v, %v", rp, err)
	}
	if rp, err := c.Do("SET", "k1", "v1"); err != nil || rp.Str != "OK" {
		t.Fatalf("SET: %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET", "k1"); err != nil || string(rp.Bulk) != "v1" {
		t.Fatalf("GET: %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET", "absent"); err != nil || !rp.Null {
		t.Fatalf("GET miss: %+v, %v", rp, err)
	}
	if rp, err := c.Do("MSET", "a", "1", "b", "2", "c", "3"); err != nil || rp.Str != "OK" {
		t.Fatalf("MSET: %+v, %v", rp, err)
	}
	rp, err := c.Do("MGET", "a", "b", "missing", "c")
	if err != nil || rp.Kind != '*' || len(rp.Array) != 4 {
		t.Fatalf("MGET: %+v, %v", rp, err)
	}
	if string(rp.Array[0].Bulk) != "1" || string(rp.Array[1].Bulk) != "2" ||
		!rp.Array[2].Null || string(rp.Array[3].Bulk) != "3" {
		t.Fatalf("MGET values: %s", rp.Text())
	}
	if rp, err := c.Do("DEL", "a", "b"); err != nil || rp.Int != 2 {
		t.Fatalf("DEL: %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET", "a"); err != nil || !rp.Null {
		t.Fatalf("GET after DEL: %+v, %v", rp, err)
	}
	if rp, err := c.Do("INFO"); err != nil || !strings.Contains(string(rp.Bulk), "shards:4") {
		t.Fatalf("INFO: %+v, %v", rp, err)
	}
	if rp, err := c.Do("NOSUCH"); err != nil || rp.Kind != '-' {
		t.Fatalf("unknown command: %+v, %v", rp, err)
	}
}

func TestServerScan(t *testing.T) {
	_, addr := startServer(t, testConfig())
	c := dialT(t, addr)

	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("scan:%03d", i)
		if rp, err := c.Do("SET", k, "v"+strconv.Itoa(i)); err != nil || rp.Str != "OK" {
			t.Fatalf("SET %s: %+v, %v", k, rp, err)
		}
	}
	// Page through the keyspace 7 at a time; pages must be sorted, disjoint
	// and complete.
	var got []string
	cursor := "scan:"
	for page := 0; page < 10; page++ {
		rp, err := c.Do("SCAN", cursor, "7")
		if err != nil || rp.Kind != '*' || len(rp.Array) != 2 {
			t.Fatalf("SCAN: %+v, %v", rp, err)
		}
		flat := rp.Array[1].Array
		if len(flat)%2 != 0 {
			t.Fatalf("odd pair array: %d", len(flat))
		}
		for i := 0; i < len(flat); i += 2 {
			got = append(got, string(flat[i].Bulk))
		}
		next := string(rp.Array[0].Bulk)
		if next == "" {
			break
		}
		cursor = next
	}
	if len(got) != 20 {
		t.Fatalf("scan returned %d keys: %v", len(got), got)
	}
	for i, k := range got {
		if want := fmt.Sprintf("scan:%03d", i); k != want {
			t.Fatalf("key %d = %q, want %q", i, k, want)
		}
	}
}

func TestServerPipelining(t *testing.T) {
	_, addr := startServer(t, testConfig())
	c := dialT(t, addr)

	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Send("SET", "p"+strconv.Itoa(i), "v"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rp, err := c.Receive()
		if err != nil || rp.Str != "OK" {
			t.Fatalf("reply %d: %+v, %v", i, rp, err)
		}
	}
	for i := 0; i < n; i++ {
		c.Send("GET", "p"+strconv.Itoa(i))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rp, err := c.Receive()
		if err != nil || string(rp.Bulk) != "v"+strconv.Itoa(i) {
			t.Fatalf("get %d: %+v, %v", i, rp, err)
		}
	}
}

func TestServerInlineCommands(t *testing.T) {
	_, addr := startServer(t, testConfig())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("SET inline-key inline-val\r\nGET inline-key\r\n")); err != nil {
		t.Fatal(err)
	}
	r := newRespReader(conn)
	if rp, err := r.ReadReply(); err != nil || rp.Str != "OK" {
		t.Fatalf("inline SET: %+v, %v", rp, err)
	}
	if rp, err := r.ReadReply(); err != nil || string(rp.Bulk) != "inline-val" {
		t.Fatalf("inline GET: %+v, %v", rp, err)
	}
}

func TestServerProtocolErrorClosesConnection(t *testing.T) {
	_, addr := startServer(t, testConfig())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("*1\r\n:5\r\n")); err != nil {
		t.Fatal(err)
	}
	r := newRespReader(conn)
	rp, err := r.ReadReply()
	if err != nil || rp.Kind != '-' {
		t.Fatalf("expected error reply, got %+v, %v", rp, err)
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("connection not closed after protocol error: %v", err)
	}
}

// TestServerConcurrentClients is the acceptance workload: 64 concurrent
// connections of mixed GET/SET/MGET against a 4-shard server, verified
// against a per-goroutine model, followed by a metrics scrape asserting
// non-zero per-shard counters.
func TestServerConcurrentClients(t *testing.T) {
	s, addr := startServer(t, testConfig())

	const conns = 64
	const opsPer = 40
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(30 * time.Second))
			rng := rand.New(rand.NewSource(int64(g)))
			mine := map[string]string{}
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("c%02d:%04d", g, rng.Intn(50))
				switch rng.Intn(3) {
				case 0: // SET
					val := fmt.Sprintf("v%d-%d", g, i)
					rp, err := c.Do("SET", key, val)
					if err != nil {
						errs <- fmt.Errorf("conn %d SET: %w", g, err)
						return
					}
					if rp.Kind == '-' && strings.HasPrefix(rp.Str, "BUSY") {
						continue // shed under load is legal
					}
					if rp.Str != "OK" {
						errs <- fmt.Errorf("conn %d SET: %s", g, rp.Text())
						return
					}
					mine[key] = val
				case 1: // GET
					rp, err := c.Do("GET", key)
					if err != nil {
						errs <- fmt.Errorf("conn %d GET: %w", g, err)
						return
					}
					if rp.Kind == '-' && strings.HasPrefix(rp.Str, "BUSY") {
						continue
					}
					want, ok := mine[key]
					if ok && string(rp.Bulk) != want {
						errs <- fmt.Errorf("conn %d GET %s = %q, want %q", g, key, rp.Bulk, want)
						return
					}
					if !ok && !rp.Null {
						errs <- fmt.Errorf("conn %d GET %s: unexpected hit %q", g, key, rp.Bulk)
						return
					}
				case 2: // MGET over three known keys
					k2 := fmt.Sprintf("c%02d:%04d", g, rng.Intn(50))
					k3 := fmt.Sprintf("c%02d:%04d", g, rng.Intn(50))
					rp, err := c.Do("MGET", key, k2, k3)
					if err != nil {
						errs <- fmt.Errorf("conn %d MGET: %w", g, err)
						return
					}
					if rp.Kind == '-' && strings.HasPrefix(rp.Str, "BUSY") {
						continue
					}
					if rp.Kind != '*' || len(rp.Array) != 3 {
						errs <- fmt.Errorf("conn %d MGET: %s", g, rp.Text())
						return
					}
					for j, k := range []string{key, k2, k3} {
						if want, ok := mine[k]; ok && !rp.Array[j].Null && string(rp.Array[j].Bulk) != want {
							errs <- fmt.Errorf("conn %d MGET %s = %q, want %q", g, k, rp.Array[j].Bulk, want)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Scrape /metrics over real HTTP and assert per-shard activity.
	body := scrapeMetrics(t, s)
	for shard := 0; shard < 4; shard++ {
		total := 0.0
		for _, op := range opNames {
			total += metricValue(t, body, fmt.Sprintf(`anykeyserver_ops_total{shard="%d",op="%s"}`, shard, op))
		}
		if total == 0 {
			t.Errorf("shard %d carried no ops", shard)
		}
		if clock := metricValue(t, body, fmt.Sprintf(`anykey_shard_clock_seconds{shard="%d"}`, shard)); clock <= 0 {
			t.Errorf("shard %d clock did not advance: %v", shard, clock)
		}
	}
	if !strings.Contains(body, "anykey_tail_blame_seconds{") {
		t.Error("blame gauges missing from exposition")
	}
	if !strings.Contains(body, "anykey_flash_writes_total{") {
		t.Error("flash counters missing from exposition")
	}
}

func scrapeMetrics(t *testing.T, s *Server) string {
	t.Helper()
	resp, err := http.Get("http://" + s.MetricsAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one sample by its exact series name from an
// exposition body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found", series)
	return 0
}

// TestServerFleet drives the elastic-fleet surface over the wire: INFO's
// replication section, FLEET KILL with replicas serving every acked key,
// FLEET REBUILD bringing the member back, FLEET RMSHARD shrinking the ring
// under the same data, and the anykey_fleet_* metrics moving.
func TestServerFleet(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.Replication = anykey.ReplicationOptions{Factor: 2}
	s, addr := startServer(t, cfg)
	c := dialT(t, addr)

	rp, err := c.Do("INFO")
	if err != nil || !strings.Contains(string(rp.Bulk), "# Replication") ||
		!strings.Contains(string(rp.Bulk), "replication_factor:2") {
		t.Fatalf("INFO missing replication section: %s, %v", rp.Text(), err)
	}

	const keys = 40
	for i := 0; i < keys; i++ {
		if rp, err := c.Do("SET", fmt.Sprintf("fleet:%03d", i), "v"+strconv.Itoa(i)); err != nil || rp.Str != "OK" {
			t.Fatalf("SET %d: %s, %v", i, rp.Text(), err)
		}
	}

	if rp, err := c.Do("FLEET", "KILL", "1", "grownbad"); err != nil || rp.Str != "OK" {
		t.Fatalf("FLEET KILL: %s, %v", rp.Text(), err)
	}
	rp, err = c.Do("FLEET", "STATUS")
	if err != nil || !strings.Contains(string(rp.Bulk), "member1:dead(grown-bad)") {
		t.Fatalf("FLEET STATUS after kill: %s, %v", rp.Text(), err)
	}
	// Every acknowledged key must still read back through surviving replicas.
	for i := 0; i < keys; i++ {
		rp, err := c.Do("GET", fmt.Sprintf("fleet:%03d", i))
		if err != nil || string(rp.Bulk) != "v"+strconv.Itoa(i) {
			t.Fatalf("GET %d with member 1 dead: %s, %v", i, rp.Text(), err)
		}
	}

	rp, err = c.Do("FLEET", "REBUILD", "1")
	if err != nil || rp.Kind != ':' {
		t.Fatalf("FLEET REBUILD: %s, %v", rp.Text(), err)
	}
	if rp.Int == 0 {
		t.Error("rebuild refilled no keys")
	}
	rp, err = c.Do("FLEET", "STATUS")
	if err != nil || !strings.Contains(string(rp.Bulk), "member1:alive") {
		t.Fatalf("FLEET STATUS after rebuild: %s, %v", rp.Text(), err)
	}
	// The member is back in the write quorum: writes acknowledge again.
	if rp, err := c.Do("SET", "fleet:post-rebuild", "pr"); err != nil || rp.Str != "OK" {
		t.Fatalf("SET after rebuild: %s, %v", rp.Text(), err)
	}

	rp, err = c.Do("FLEET", "RMSHARD", "2")
	if err != nil || rp.Kind != ':' || rp.Int == 0 {
		t.Fatalf("FLEET RMSHARD: %s, %v", rp.Text(), err)
	}
	rp, err = c.Do("FLEET", "STATUS")
	if err != nil || !strings.Contains(string(rp.Bulk), "member2:retired") ||
		!strings.Contains(string(rp.Bulk), "ring_members:3") {
		t.Fatalf("FLEET STATUS after rmshard: %s, %v", rp.Text(), err)
	}
	// The data survived both the rebuild and the reshard.
	for i := 0; i < keys; i++ {
		rp, err := c.Do("GET", fmt.Sprintf("fleet:%03d", i))
		if err != nil || string(rp.Bulk) != "v"+strconv.Itoa(i) {
			t.Fatalf("GET %d after rmshard: %s, %v", i, rp.Text(), err)
		}
	}

	body := scrapeMetrics(t, s)
	if v := metricValue(t, body, "anykey_fleet_rebuilds_total"); v != 1 {
		t.Errorf("anykey_fleet_rebuilds_total = %v, want 1", v)
	}
	if v := metricValue(t, body, "anykey_fleet_epoch"); v != 1 {
		t.Errorf("anykey_fleet_epoch = %v, want 1", v)
	}
	if v := metricValue(t, body, "anykey_fleet_migrated_keys_total"); v == 0 {
		t.Error("anykey_fleet_migrated_keys_total did not move")
	}
	if v := metricValue(t, body, `anykey_shard_up{shard="1"}`); v != 1 {
		t.Errorf(`anykey_shard_up{shard="1"} = %v, want 1 after rebuild`, v)
	}
	if v := metricValue(t, body, `anykey_shard_up{shard="2"}`); v != 0 {
		t.Errorf(`anykey_shard_up{shard="2"} = %v, want 0 after rmshard`, v)
	}
}

// Fleet commands on a non-replicated server must refuse, not crash.
func TestServerFleetUnsupported(t *testing.T) {
	_, addr := startServer(t, testConfig())
	c := dialT(t, addr)
	rp, err := c.Do("FLEET", "STATUS")
	if err != nil || rp.Kind != '-' || !strings.Contains(rp.Str, "replicated") {
		t.Fatalf("FLEET on non-replicated server: %s, %v", rp.Text(), err)
	}
}

func TestServerHealthz(t *testing.T) {
	s, _ := startServer(t, testConfig())
	resp, err := http.Get("http://" + s.MetricsAddr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// TestServerBusyShedding saturates one shard loop deterministically: a held
// request parks the loop, Inflight more fill the queue, and the next
// submission must shed.
func TestServerBusyShedding(t *testing.T) {
	cfg := testConfig()
	cfg.Inflight = 2
	s, addr := startServer(t, cfg)

	// Park shard 0's loop on a held request. The deferred release also
	// covers failure paths, so shutdown never waits on a parked loop.
	hold := make(chan struct{})
	held := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(hold) })
	defer releaseOnce()
	parked := &request{op: opGet, key: []byte("x"), wall: time.Now(),
		resp: make(chan response, 1), hold: hold, held: held}
	if !s.br.submit(0, parked) {
		t.Fatal("parked request shed immediately")
	}
	<-held // the loop owns the parked request; its queue slot is free
	// Fill the queue behind it.
	fillers := make([]*request, cfg.Inflight)
	for i := range fillers {
		fillers[i] = &request{op: opGet, key: []byte("x"), wall: time.Now(),
			resp: make(chan response, 1)}
		if !s.br.submit(0, fillers[i]) {
			t.Fatalf("filler %d shed before the queue was full", i)
		}
	}

	// A real client command routed to shard 0 must now answer -BUSY.
	key := shardKey(t, s, 0)
	c := dialT(t, addr)
	rp, err := c.Do("SET", key, "v")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' || !strings.HasPrefix(rp.Str, "BUSY") {
		t.Fatalf("expected -BUSY, got %s", rp.Text())
	}
	if shed := metricValue(t, scrapeMetrics(t, s), `anykeyserver_shed_total{shard="0"}`); shed == 0 {
		t.Error("shed counter did not move")
	}

	// Release the loop and confirm the shard recovers.
	releaseOnce()
	<-parked.resp
	for _, f := range fillers {
		<-f.resp
	}
	if rp, err := c.Do("SET", key, "v"); err != nil || rp.Str != "OK" {
		t.Fatalf("post-recovery SET: %+v, %v", rp, err)
	}
}

// shardKey finds a key routed to the given shard.
func shardKey(t *testing.T, s *Server, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := "probe:" + strconv.Itoa(i)
		if s.cl.ShardFor([]byte(k)) == shard {
			return k
		}
	}
	t.Fatal("no key found for shard")
	return ""
}

func TestServerVirtualTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.Timeout = time.Nanosecond // every simulated op takes longer than 1ns
	_, addr := startServer(t, cfg)
	c := dialT(t, addr)
	rp, err := c.Do("SET", "k", "v")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' || !strings.HasPrefix(rp.Str, "TIMEOUT") {
		t.Fatalf("expected -TIMEOUT, got %s", rp.Text())
	}
}

func TestServerTimeScale(t *testing.T) {
	cfg := testConfig()
	cfg.TimeScale = 1000 // 1ms of wall time ages the clocks a full second
	s, addr := startServer(t, cfg)
	c := dialT(t, addr)
	if rp, err := c.Do("SET", "k", "v"); err != nil || rp.Str != "OK" {
		t.Fatalf("SET: %+v, %v", rp, err)
	}
	time.Sleep(5 * time.Millisecond)
	if rp, err := c.Do("SET", "k2", "v2"); err != nil || rp.Str != "OK" {
		t.Fatalf("SET: %+v, %v", rp, err)
	}
	// After ≥5ms of wall time at 1000x, at least one shard clock must have
	// advanced several virtual seconds — far beyond what two small writes
	// could account for on their own.
	if now := s.cl.Now(); now < anykey.Time(time.Second.Nanoseconds()) {
		t.Fatalf("cluster clock %v did not track scaled wall time", now)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()

	c, err := Dial(s.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if rp, err := c.Do("SET", "k", "v"); err != nil || rp.Str != "OK" {
		t.Fatalf("SET: %+v, %v", rp, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	// The listener is gone …
	if _, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	// … the old connection is drained and closed …
	if _, err := c.Do("PING"); err == nil {
		t.Fatal("drained connection still answering")
	}
	// … and the cluster is closed.
	if _, err := s.cl.Put([]byte("k"), []byte("v")); !errors.Is(err, anykey.ErrClosed) {
		t.Fatalf("cluster not closed: %v", err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestServerShutdownReportsCloseError(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	s.closeCluster = func() error { return errors.New("injected close failure") }

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = s.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "injected close failure") {
		t.Fatalf("shutdown error = %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	s.cl.Close()
}
