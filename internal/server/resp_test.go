package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func cmdReader(s string) *respReader {
	return newRespReader(strings.NewReader(s))
}

func TestReadCommandArray(t *testing.T) {
	r := cmdReader("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n")
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("SET"), []byte("k"), []byte("hello")}
	if len(args) != len(want) {
		t.Fatalf("got %d args", len(args))
	}
	for i := range want {
		if !bytes.Equal(args[i], want[i]) {
			t.Fatalf("arg %d = %q, want %q", i, args[i], want[i])
		}
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("expected EOF after last command, got %v", err)
	}
}

func TestReadCommandInline(t *testing.T) {
	r := cmdReader("PING\r\n\r\nSET key  value\nGET key\r\n")
	for i, want := range [][]string{
		{"PING"},
		{"SET", "key", "value"}, // blank line skipped, runs of spaces collapse
		{"GET", "key"},
	} {
		args, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if len(args) != len(want) {
			t.Fatalf("command %d: %q", i, args)
		}
		for j := range want {
			if string(args[j]) != want[j] {
				t.Fatalf("command %d arg %d = %q, want %q", i, j, args[j], want[j])
			}
		}
	}
}

func TestReadCommandPipelined(t *testing.T) {
	r := cmdReader("*1\r\n$4\r\nPING\r\n*2\r\n$4\r\nECHO\r\n$2\r\nhi\r\n")
	a, err := r.ReadCommand()
	if err != nil || string(a[0]) != "PING" {
		t.Fatalf("first: %q, %v", a, err)
	}
	if r.buffered() == 0 {
		t.Fatal("second pipelined command not buffered")
	}
	b, err := r.ReadCommand()
	if err != nil || string(b[0]) != "ECHO" || string(b[1]) != "hi" {
		t.Fatalf("second: %q, %v", b, err)
	}
}

func TestReadCommandMalformed(t *testing.T) {
	cases := map[string]string{
		"null array":        "*-1\r\n",
		"empty array":       "*0\r\n",
		"huge array":        "*99999999\r\n",
		"bad array count":   "*x\r\n",
		"null bulk in cmd":  "*1\r\n$-1\r\n",
		"negative bulk len": "*1\r\n$-3\r\nabc\r\n",
		"oversized bulk":    "*1\r\n$16777217\r\n",
		"bad bulk length":   "*1\r\n$zz\r\n",
		"missing crlf":      "*1\r\n$3\r\nabcXY",
		"wrong elem type":   "*1\r\n:5\r\n",
	}
	for name, input := range cases {
		_, err := cmdReader(input).ReadCommand()
		if err == nil {
			t.Errorf("%s: no error", name)
			continue
		}
		if !errors.Is(err, ErrProtocol) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: error %v is neither protocol nor truncation", name, err)
		}
	}
}

func TestReadCommandTruncated(t *testing.T) {
	// Cut an array command at every byte boundary: each prefix must yield
	// either a clean EOF (nothing consumed yet) or an unexpected-EOF — never
	// a successful parse and never a hang.
	full := "*2\r\n$3\r\nGET\r\n$5\r\nmykey\r\n"
	for i := 1; i < len(full); i++ {
		_, err := cmdReader(full[:i]).ReadCommand()
		if err == nil {
			t.Fatalf("prefix %q parsed successfully", full[:i])
		}
	}
}

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := newRespWriter(&buf)
	w.WriteSimple("OK")
	w.WriteError("ERR boom")
	w.WriteInt(-42)
	w.WriteBulk([]byte("payload"))
	w.WriteBulk(nil)
	w.WriteArrayHeader(2)
	w.WriteBulkString("a")
	w.WriteBulkString("b")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := newRespReader(&buf)
	rp, err := r.ReadReply()
	if err != nil || rp.Kind != '+' || rp.Str != "OK" {
		t.Fatalf("simple: %+v, %v", rp, err)
	}
	rp, err = r.ReadReply()
	if err != nil || rp.Kind != '-' || rp.Str != "ERR boom" {
		t.Fatalf("error: %+v, %v", rp, err)
	}
	if rp.Err() == nil {
		t.Fatal("error reply did not convert to error")
	}
	rp, err = r.ReadReply()
	if err != nil || rp.Kind != ':' || rp.Int != -42 {
		t.Fatalf("int: %+v, %v", rp, err)
	}
	rp, err = r.ReadReply()
	if err != nil || rp.Kind != '$' || string(rp.Bulk) != "payload" {
		t.Fatalf("bulk: %+v, %v", rp, err)
	}
	rp, err = r.ReadReply()
	if err != nil || !rp.Null {
		t.Fatalf("null bulk: %+v, %v", rp, err)
	}
	rp, err = r.ReadReply()
	if err != nil || rp.Kind != '*' || len(rp.Array) != 2 ||
		string(rp.Array[0].Bulk) != "a" || string(rp.Array[1].Bulk) != "b" {
		t.Fatalf("array: %+v, %v", rp, err)
	}
}

func TestWriterSanitizesControlCharacters(t *testing.T) {
	var buf bytes.Buffer
	w := newRespWriter(&buf)
	w.WriteError("ERR key\r\ncontains newline")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rp, err := newRespReader(&buf).ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' || strings.ContainsAny(rp.Str, "\r\n") {
		t.Fatalf("sanitization failed: %+v", rp)
	}
}

func TestReplyText(t *testing.T) {
	cases := []struct {
		rp   Reply
		want string
	}{
		{Reply{Kind: '+', Str: "OK"}, "OK"},
		{Reply{Kind: '-', Str: "ERR x"}, "(error) ERR x"},
		{Reply{Kind: ':', Int: 7}, "7"},
		{Reply{Kind: '$', Null: true}, "(nil)"},
		{Reply{Kind: '$', Bulk: []byte("v")}, "v"},
		{Reply{Kind: '*', Array: []Reply{{Kind: ':', Int: 1}, {Kind: '$', Bulk: []byte("x")}}}, "1) 1\n2) x"},
	}
	for _, c := range cases {
		if got := c.rp.Text(); got != c.want {
			t.Errorf("Text(%+v) = %q, want %q", c.rp, got, c.want)
		}
	}
}

func TestReplyNestingLimit(t *testing.T) {
	deep := strings.Repeat("*1\r\n", maxReplyDepth+2) + ":1\r\n"
	if _, err := cmdReader(deep).ReadReply(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("deep nesting: %v", err)
	}
}
