package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anykey"
	"anykey/internal/metrics"
	"anykey/internal/trace"
)

// Config configures an anykeyserver instance.
type Config struct {
	// Addr is the TCP listen address for the RESP endpoint (e.g. ":6380";
	// ":0" picks a free port — read it back with Server.Addr).
	Addr string
	// MetricsAddr is the HTTP listen address for /metrics, /healthz and
	// /debug/pprof. Empty disables the HTTP endpoint.
	MetricsAddr string

	// Cluster configures the simulated fleet behind the server. Tracing is
	// enabled automatically when Cluster.Device.Trace is nil — the blame
	// gauges need per-shard tracers.
	Cluster anykey.ClusterOptions

	// Inflight bounds each shard's bridge queue: requests beyond it are
	// shed with a RESP -BUSY (default 128).
	Inflight int
	// Timeout is the virtual latency budget per operation: completions
	// slower than this in simulated time answer -TIMEOUT (default 0 = no
	// budget).
	Timeout time.Duration
	// TimeScale maps wall-clock seconds to virtual seconds (default 1.0;
	// 10 means one real second ages each shard's clock ten virtual
	// seconds).
	TimeScale float64
	// BlameEvery refreshes the per-shard tail-blame gauges every N
	// operations on that shard (default 256).
	BlameEvery int
}

func (c *Config) normalize() error {
	if c.Addr == "" {
		c.Addr = ":6380"
	}
	if c.Inflight == 0 {
		c.Inflight = 128
	}
	if c.Inflight < 0 {
		return fmt.Errorf("%w: Inflight %d is negative", anykey.ErrInvalidOptions, c.Inflight)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("%w: Timeout %v is negative", anykey.ErrInvalidOptions, c.Timeout)
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1.0
	}
	if c.TimeScale < 0 {
		return fmt.Errorf("%w: TimeScale %v is negative", anykey.ErrInvalidOptions, c.TimeScale)
	}
	if c.BlameEvery == 0 {
		c.BlameEvery = 256
	}
	if c.BlameEvery < 0 {
		return fmt.Errorf("%w: BlameEvery %d is negative", anykey.ErrInvalidOptions, c.BlameEvery)
	}
	if c.Cluster.Device.Trace == nil {
		c.Cluster.Device.Trace = &anykey.TraceOptions{}
	}
	return nil
}

// serverMetrics is every series the /metrics endpoint exports. The
// anykeyserver_* families are updated on the request path; the anykey_*
// families mirror cluster statistics, refreshed by an OnScrape hook (and
// the blame gauges, refreshed inside each shard loop).
type serverMetrics struct {
	connections      *metrics.Gauge
	connectionsTotal *metrics.Counter

	ops       *metrics.CounterVec   // {shard,op}
	opErrors  *metrics.CounterVec   // {shard}
	shed      *metrics.CounterVec   // {shard}
	timeouts  *metrics.CounterVec   // {shard}
	inflight  *metrics.GaugeVec     // {shard}
	latency   *metrics.HistogramVec // {shard} virtual seconds
	queueWait *metrics.HistogramVec // {shard} virtual seconds

	blame          *metrics.GaugeVec // {shard,cause}
	blameThreshold *metrics.GaugeVec // {shard}

	shardClock  *metrics.GaugeVec   // {shard}
	shardOps    *metrics.CounterVec // {shard}
	liveKeys    *metrics.GaugeVec   // {shard}
	liveBytes   *metrics.GaugeVec   // {shard}
	flashReads  *metrics.CounterVec // {shard}
	flashWrites *metrics.CounterVec // {shard}
	flashErases *metrics.CounterVec // {shard}
	treeComp    *metrics.CounterVec // {shard}
	logComp     *metrics.CounterVec // {shard}
	chainedComp *metrics.CounterVec // {shard}
	gcRuns      *metrics.CounterVec // {shard}
	gcRelocs    *metrics.CounterVec // {shard}

	storeLogical  *metrics.Gauge
	storeResident *metrics.Gauge

	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	cacheAdmitted *metrics.Counter
	cacheEvicted  *metrics.Counter
	cacheBytes    *metrics.Gauge

	txnCommits     *metrics.Counter
	txnAborts      *metrics.Counter
	txnRetries     *metrics.Counter
	txnSplitMerges *metrics.Counter
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	latBuckets := metrics.ExpBuckets(1e-6, 2, 24) // 1µs … ~8s of virtual time
	return &serverMetrics{
		connections:      r.NewGauge("anykeyserver_connections", "Open client connections."),
		connectionsTotal: r.NewCounter("anykeyserver_connections_total", "Client connections accepted."),

		ops:       r.NewCounterVec("anykeyserver_ops_total", "Completed storage operations by shard and kind.", "shard", "op"),
		opErrors:  r.NewCounterVec("anykeyserver_op_errors_total", "Storage operations that failed.", "shard"),
		shed:      r.NewCounterVec("anykeyserver_shed_total", "Requests shed with -BUSY because the shard queue was full.", "shard"),
		timeouts:  r.NewCounterVec("anykeyserver_timeouts_total", "Completions over the virtual latency budget.", "shard"),
		inflight:  r.NewGaugeVec("anykeyserver_inflight", "Requests queued in the shard bridge loop.", "shard"),
		latency:   r.NewHistogramVec("anykeyserver_latency_seconds", "End-to-end virtual latency (arrival to done).", latBuckets, "shard"),
		queueWait: r.NewHistogramVec("anykeyserver_queue_wait_seconds", "Virtual time spent waiting for a submission slot.", latBuckets, "shard"),

		blame:          r.NewGaugeVec("anykey_tail_blame_seconds", "Tail-latency blame by cause over the slowest percentile of traced ops.", "shard", "cause"),
		blameThreshold: r.NewGaugeVec("anykey_tail_blame_threshold_seconds", "Latency at the blame percentile cut.", "shard"),

		shardClock:  r.NewGaugeVec("anykey_shard_clock_seconds", "The shard's virtual clock.", "shard"),
		shardOps:    r.NewCounterVec("anykey_shard_ops_total", "Requests carried by the shard engine.", "shard"),
		liveKeys:    r.NewGaugeVec("anykey_live_keys", "Live keys on the shard.", "shard"),
		liveBytes:   r.NewGaugeVec("anykey_live_bytes", "Live value bytes on the shard.", "shard"),
		flashReads:  r.NewCounterVec("anykey_flash_reads_total", "Flash page reads, all causes.", "shard"),
		flashWrites: r.NewCounterVec("anykey_flash_writes_total", "Flash page writes, all causes.", "shard"),
		flashErases: r.NewCounterVec("anykey_flash_erases_total", "Flash block erases.", "shard"),
		treeComp:    r.NewCounterVec("anykey_tree_compactions_total", "LSM tree compactions.", "shard"),
		logComp:     r.NewCounterVec("anykey_log_compactions_total", "Value-log compactions.", "shard"),
		chainedComp: r.NewCounterVec("anykey_chained_compactions_total", "Chained compactions.", "shard"),
		gcRuns:      r.NewCounterVec("anykey_gc_runs_total", "Garbage-collection runs.", "shard"),
		gcRelocs:    r.NewCounterVec("anykey_gc_relocations_total", "Pages relocated by GC.", "shard"),

		storeLogical:  r.NewGauge("anykey_store_logical_bytes", "Programmed page bytes a raw payload store would retain, all shards."),
		storeResident: r.NewGauge("anykey_store_resident_bytes", "Host bytes the payload stores actually retain, all shards."),

		cacheHits:     r.NewCounter("anykey_cache_hits_total", "Host-cache read hits, all shards."),
		cacheMisses:   r.NewCounter("anykey_cache_misses_total", "Host-cache read misses, all shards."),
		cacheAdmitted: r.NewCounter("anykey_cache_admitted_total", "Values admitted into the host caches."),
		cacheEvicted:  r.NewCounter("anykey_cache_evicted_total", "Values evicted from the host caches."),
		cacheBytes:    r.NewGauge("anykey_cache_bytes", "Bytes resident across the host caches."),

		txnCommits:     r.NewCounter("anykey_txn_commits_total", "Committed transactions (closures, RMW primitives and atomic batches)."),
		txnAborts:      r.NewCounter("anykey_txn_aborts_total", "Transactions abandoned after exhausting the retry budget."),
		txnRetries:     r.NewCounter("anykey_txn_retries_total", "Transaction attempts re-run after a validation conflict."),
		txnSplitMerges: r.NewCounter("anykey_txn_split_merges_total", "Hot-key split phases merged back into the keyspace."),
	}
}

// registerHeapGauge exports the process's live heap, read at scrape time.
func registerHeapGauge(r *metrics.Registry) {
	r.NewGaugeFunc("anykey_heap_bytes", "Live heap bytes of the server process (runtime HeapAlloc).", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
}

// fleetMetrics is the replication/migration/rebuild family, registered only
// when the cluster runs with Replication.Factor > 0. The counters mirror
// the fleet's monotone tallies on every scrape.
type fleetMetrics struct {
	up *metrics.GaugeVec // {shard} 1 = alive, 0 = dead/rebuilding/retired

	epoch           *metrics.Gauge
	migrationActive *metrics.Gauge
	ringMembers     *metrics.Gauge
	deadMembers     *metrics.Gauge

	quorumFailures *metrics.Counter
	readFallbacks  *metrics.Counter
	readRepairs    *metrics.Counter
	migratedKeys   *metrics.Counter
	migratedBytes  *metrics.Counter
	cleanupDeletes *metrics.Counter
	rebuilds       *metrics.Counter
	rebuiltKeys    *metrics.Counter
}

func newFleetMetrics(r *metrics.Registry) *fleetMetrics {
	return &fleetMetrics{
		up: r.NewGaugeVec("anykey_shard_up", "1 while the member serves (alive), 0 while dead, rebuilding or retired.", "shard"),

		epoch:           r.NewGauge("anykey_fleet_epoch", "Committed topology-migration epochs."),
		migrationActive: r.NewGauge("anykey_fleet_migration_active", "1 while a topology change is streaming keys."),
		ringMembers:     r.NewGauge("anykey_fleet_ring_members", "Members on the committed ring."),
		deadMembers:     r.NewGauge("anykey_fleet_dead_members", "Members currently dead."),

		quorumFailures: r.NewCounter("anykey_fleet_quorum_failures_total", "Writes acknowledged by fewer than WriteQuorum alive replicas."),
		readFallbacks:  r.NewCounter("anykey_fleet_read_fallbacks_total", "Reads served by an owner past the first alive one tried."),
		readRepairs:    r.NewCounter("anykey_fleet_read_repairs_total", "Divergent replicas re-written by read-repair reads."),
		migratedKeys:   r.NewCounter("anykey_fleet_migrated_keys_total", "Keys streamed by topology migrations."),
		migratedBytes:  r.NewCounter("anykey_fleet_migrated_bytes_total", "Bytes streamed by topology migrations."),
		cleanupDeletes: r.NewCounter("anykey_fleet_cleanup_deletes_total", "Stale copies deleted off ex-owners at epoch commits."),
		rebuilds:       r.NewCounter("anykey_fleet_rebuilds_total", "Completed device rebuilds."),
		rebuiltKeys:    r.NewCounter("anykey_fleet_rebuilt_keys_total", "Keys re-filled onto replacement hardware."),
	}
}

// touchShard pre-registers every per-shard series so a scrape taken before
// traffic still shows each shard at zero.
func (m *serverMetrics) touchShard(s int) {
	sh := strconv.Itoa(s)
	for _, op := range opNames {
		m.ops.With(sh, op)
	}
	m.opErrors.With(sh)
	m.shed.With(sh)
	m.timeouts.With(sh)
	m.latency.With(sh)
	m.queueWait.With(sh)
	m.blameThreshold.With(sh)
	for c := trace.Cause(0); c < trace.NumCauses; c++ {
		m.blame.With(sh, c.String())
	}
}

// Server is a running anykeyserver: a RESP front end, its bridge, and the
// metrics endpoint.
type Server struct {
	cfg  Config
	cl   *anykey.Cluster
	br   *Bridge
	reg  *metrics.Registry
	met  *serverMetrics
	fmet *fleetMetrics // nil unless the cluster replicates

	ln  net.Listener
	mln net.Listener
	hs  *http.Server

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	connWG   sync.WaitGroup
	draining atomic.Bool
	started  time.Time

	shutdownOnce sync.Once
	shutdownErr  error

	// closeCluster closes the cluster at the end of Shutdown. It defaults
	// to the cluster's own Close; tests inject failures through it.
	closeCluster func() error
}

// New opens the cluster, binds both listeners and starts the bridge loops.
// The server accepts no connections until Serve runs.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cl, err := anykey.OpenCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	met := newServerMetrics(reg)
	registerHeapGauge(reg)
	s := &Server{
		cfg:          cfg,
		cl:           cl,
		reg:          reg,
		met:          met,
		conns:        map[net.Conn]struct{}{},
		started:      time.Now(),
		closeCluster: cl.Close,
	}
	for i := 0; i < cl.Shards(); i++ {
		met.touchShard(i)
	}
	if cl.Replication().Factor > 0 {
		s.fmet = newFleetMetrics(reg)
		for i := 0; i < cl.Shards(); i++ {
			s.fmet.up.With(strconv.Itoa(i)).Set(1)
		}
	}
	reg.OnScrape(s.refreshClusterMetrics)
	s.br = newBridge(cl, cfg.TimeScale, anykey.Duration(cfg.Timeout.Nanoseconds()),
		cfg.Inflight, cfg.BlameEvery, met)

	s.ln, err = net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.br.close()
		cl.Close()
		return nil, err
	}
	if cfg.MetricsAddr != "" {
		s.mln, err = net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			s.ln.Close()
			s.br.close()
			cl.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			if s.draining.Load() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte("ok\n"))
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		s.hs = &http.Server{Handler: mux}
	}
	return s, nil
}

// Addr returns the bound RESP listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// MetricsAddr returns the bound HTTP listen address, nil when disabled.
func (s *Server) MetricsAddr() net.Addr {
	if s.mln == nil {
		return nil
	}
	return s.mln.Addr()
}

// Registry returns the server's metrics registry (for embedding tests).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// refreshClusterMetrics mirrors a cluster stats snapshot into the anykey_*
// families. It runs on every scrape.
func (s *Server) refreshClusterMetrics() {
	st := s.cl.Stats()
	for _, ss := range st.PerShard {
		sh := strconv.Itoa(ss.Shard)
		s.met.shardClock.With(sh).Set(float64(ss.Now) / 1e9)
		s.met.shardOps.With(sh).Set(float64(ss.Ops))
		s.met.liveKeys.With(sh).Set(float64(ss.LiveKeys))
		s.met.liveBytes.With(sh).Set(float64(ss.LiveBytes))
		s.met.flashReads.With(sh).Set(float64(ss.Flash.TotalReads()))
		s.met.flashWrites.With(sh).Set(float64(ss.Flash.TotalWrites()))
		s.met.flashErases.With(sh).Set(float64(ss.Flash.Erases))
		s.met.treeComp.With(sh).Set(float64(ss.TreeCompactions))
		s.met.logComp.With(sh).Set(float64(ss.LogCompactions))
		s.met.chainedComp.With(sh).Set(float64(ss.ChainedCompactions))
		s.met.gcRuns.With(sh).Set(float64(ss.GCRuns))
		s.met.gcRelocs.With(sh).Set(float64(ss.GCRelocations))
	}
	s.met.storeLogical.Set(float64(st.Store.LogicalBytes))
	s.met.storeResident.Set(float64(st.Store.ResidentBytes))
	if cs := st.Cache; cs != nil {
		s.met.cacheHits.Set(float64(cs.Hits))
		s.met.cacheMisses.Set(float64(cs.Misses))
		s.met.cacheAdmitted.Set(float64(cs.Admitted))
		s.met.cacheEvicted.Set(float64(cs.Evicted))
		s.met.cacheBytes.Set(float64(cs.Bytes))
	}
	ts := s.cl.TxnStats()
	s.met.txnCommits.Set(float64(ts.Commits))
	s.met.txnAborts.Set(float64(ts.Aborts))
	s.met.txnRetries.Set(float64(ts.Retries))
	s.met.txnSplitMerges.Set(float64(ts.SplitMerges))
	if s.fmet == nil {
		return
	}
	fs, err := s.cl.FleetStats()
	if err != nil {
		return
	}
	for _, m := range fs.Members {
		var up float64
		if m.State == "alive" {
			up = 1
		}
		s.fmet.up.With(strconv.Itoa(m.Shard)).Set(up)
	}
	s.fmet.epoch.Set(float64(fs.Repl.Epoch))
	s.fmet.migrationActive.Set(b2f(fs.Repl.MigrationActive))
	s.fmet.ringMembers.Set(float64(fs.Repl.RingMembers))
	s.fmet.deadMembers.Set(float64(fs.Repl.DeadMembers))
	s.fmet.quorumFailures.Set(float64(fs.Repl.QuorumFailures))
	s.fmet.readFallbacks.Set(float64(fs.Repl.ReadFallbacks))
	s.fmet.readRepairs.Set(float64(fs.Repl.ReadRepairs))
	s.fmet.migratedKeys.Set(float64(fs.Repl.MigratedKeys))
	s.fmet.migratedBytes.Set(float64(fs.Repl.MigratedBytes))
	s.fmet.cleanupDeletes.Set(float64(fs.Repl.CleanupDeletes))
	s.fmet.rebuilds.Set(float64(fs.Repl.Rebuilds))
	s.fmet.rebuiltKeys.Set(float64(fs.Repl.RebuiltKeys))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Serve runs the HTTP endpoint (if configured) and the RESP accept loop.
// It blocks until Shutdown closes the listener, then returns nil; any
// other accept failure is returned as-is.
func (s *Server) Serve() error {
	if s.hs != nil {
		go s.hs.Serve(s.mln)
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		s.met.connections.Add(1)
		s.met.connectionsTotal.Inc()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.met.connections.Add(-1)
		s.connWG.Done()
	}()
	r := newRespReader(conn)
	w := newRespWriter(conn)
	cs := &connState{}
	for {
		args, err := r.ReadCommand()
		if err != nil {
			if errors.Is(err, ErrProtocol) {
				w.WriteError("ERR " + err.Error())
				w.Flush()
			}
			return
		}
		closing := s.dispatch(w, args, cs)
		// Pipelining: flush only when the client has no further command
		// already buffered, so a burst of N commands costs one write.
		if r.buffered() == 0 || closing {
			if err := w.Flush(); err != nil {
				return
			}
		}
		if closing {
			return
		}
	}
}

// connState is the per-connection command state: an open MULTI block queues
// write operations until EXEC commits them as one atomic cross-shard batch.
type connState struct {
	multi    bool
	queue    []anykey.TxnOp
	multiErr bool // a queue-time error poisons the block: EXEC answers -EXECABORT
}

// dispatch executes one command and writes its reply (unflushed). It
// returns true when the connection should close.
func (s *Server) dispatch(w *respWriter, args [][]byte, cs *connState) bool {
	cmd := strings.ToUpper(string(args[0]))
	if cs.multi {
		switch cmd {
		case "EXEC", "DISCARD", "QUIT":
			// Resolved by the main switch below.
		case "MULTI":
			w.WriteError("ERR MULTI calls can not be nested")
			return false
		case "SET":
			if len(args) != 3 {
				cs.multiErr = true
				w.WriteError("ERR wrong number of arguments for 'set' command")
				return false
			}
			cs.queue = append(cs.queue, anykey.TxnOp{
				Key:   append([]byte(nil), args[1]...),
				Value: append([]byte(nil), args[2]...),
			})
			w.WriteSimple("QUEUED")
			return false
		case "DEL":
			if len(args) < 2 {
				cs.multiErr = true
				w.WriteError("ERR wrong number of arguments for 'del' command")
				return false
			}
			for _, k := range args[1:] {
				cs.queue = append(cs.queue, anykey.TxnOp{
					Key:    append([]byte(nil), k...),
					Delete: true,
				})
			}
			w.WriteSimple("QUEUED")
			return false
		default:
			// The atomic batch is put/delete-shaped; anything else cannot
			// queue. The poisoned block aborts at EXEC, like Redis.
			cs.multiErr = true
			w.WriteError("ERR command '" + sanitizeLine(string(args[0])) + "' not allowed in MULTI (only SET and DEL queue)")
			return false
		}
	}
	switch cmd {
	case "PING":
		if len(args) > 2 {
			w.WriteError("ERR wrong number of arguments for 'ping' command")
			return false
		}
		if len(args) == 2 {
			w.WriteBulk(args[1])
		} else {
			w.WriteSimple("PONG")
		}
	case "ECHO":
		if len(args) != 2 {
			w.WriteError("ERR wrong number of arguments for 'echo' command")
			return false
		}
		w.WriteBulk(args[1])
	case "COMMAND":
		// redis-cli probes COMMAND DOCS on connect; an empty array keeps it
		// happy without implementing the catalogue.
		w.WriteArrayHeader(0)
	case "QUIT":
		w.WriteSimple("OK")
		return true
	case "INFO":
		w.WriteBulk([]byte(s.info()))
	case "SET":
		if len(args) != 3 {
			w.WriteError("ERR wrong number of arguments for 'set' command")
			return false
		}
		resps, errReply := s.doRawWrite([]*request{{op: opSet, key: args[1], value: args[2]}})
		switch {
		case errReply != "":
			w.WriteError(errReply)
		case resps[0].timedOut:
			w.WriteError("TIMEOUT virtual latency budget exceeded")
		default:
			w.WriteSimple("OK")
		}
	case "GET":
		if len(args) != 2 {
			w.WriteError("ERR wrong number of arguments for 'get' command")
			return false
		}
		resps, errReply := s.doStorage([]*request{{op: opGet, key: args[1]}})
		switch {
		case errReply != "":
			w.WriteError(errReply)
		case resps[0].timedOut:
			w.WriteError("TIMEOUT virtual latency budget exceeded")
		case resps[0].found:
			w.WriteBulk(resps[0].value)
		default:
			w.WriteBulk(nil)
		}
	case "DEL":
		if len(args) < 2 {
			w.WriteError("ERR wrong number of arguments for 'del' command")
			return false
		}
		reqs := make([]*request, 0, len(args)-1)
		for _, k := range args[1:] {
			reqs = append(reqs, &request{op: opDel, key: k})
		}
		resps, errReply := s.doRawWrite(reqs)
		if errReply != "" {
			w.WriteError(errReply)
			return false
		}
		// The device acknowledges deletes of absent keys, so DEL counts
		// acknowledged deletions, not prior existence.
		n := int64(0)
		for _, rp := range resps {
			if !rp.timedOut {
				n++
			}
		}
		w.WriteInt(n)
	case "MGET":
		if len(args) < 2 {
			w.WriteError("ERR wrong number of arguments for 'mget' command")
			return false
		}
		reqs := make([]*request, 0, len(args)-1)
		for _, k := range args[1:] {
			reqs = append(reqs, &request{op: opGet, key: k})
		}
		resps, errReply := s.doStorage(reqs)
		if errReply != "" {
			w.WriteError(errReply)
			return false
		}
		w.WriteArrayHeader(len(resps))
		for _, rp := range resps {
			if rp.found && !rp.timedOut {
				w.WriteBulk(rp.value)
			} else {
				w.WriteBulk(nil)
			}
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			w.WriteError("ERR wrong number of arguments for 'mset' command")
			return false
		}
		reqs := make([]*request, 0, (len(args)-1)/2)
		for i := 1; i < len(args); i += 2 {
			reqs = append(reqs, &request{op: opSet, key: args[i], value: args[i+1]})
		}
		_, errReply := s.doRawWrite(reqs)
		if errReply != "" {
			w.WriteError(errReply)
			return false
		}
		w.WriteSimple("OK")
	case "SCAN":
		// SCAN <start-key> <count>: cursor-style range query. The reply is
		// [next-cursor, flat key/value array]; an empty next-cursor means
		// the keyspace is exhausted.
		if len(args) != 3 {
			w.WriteError("ERR wrong number of arguments for 'scan' command")
			return false
		}
		n, err := strconv.Atoi(string(args[2]))
		if err != nil || n <= 0 || n > MaxArray/2 {
			w.WriteError("ERR invalid scan count")
			return false
		}
		s.dispatchScan(w, args[1], n)
	case "INCR", "INCRBY":
		// INCR key | INCRBY key delta: atomic counter add through the OCC
		// layer, with hot keys absorbed by the split phase. The reply is the
		// new value (on a split hot key: the exact phase-local running total).
		delta := int64(1)
		if cmd == "INCRBY" {
			if len(args) != 3 {
				w.WriteError("ERR wrong number of arguments for 'incrby' command")
				return false
			}
			var err error
			delta, err = strconv.ParseInt(string(args[2]), 10, 64)
			if err != nil {
				w.WriteError("ERR value is not an integer or out of range")
				return false
			}
		} else if len(args) != 2 {
			w.WriteError("ERR wrong number of arguments for 'incr' command")
			return false
		}
		v, _, err := s.cl.Incr(args[1], delta)
		if err != nil {
			w.WriteError(txnErrReply(err))
			return false
		}
		w.WriteInt(v)
	case "APPEND":
		if len(args) != 3 {
			w.WriteError("ERR wrong number of arguments for 'append' command")
			return false
		}
		if _, err := s.cl.Append(args[1], args[2]); err != nil {
			w.WriteError(txnErrReply(err))
			return false
		}
		w.WriteSimple("OK")
	case "CAS":
		// CAS key old new: write new iff the current value equals old; an
		// empty old means "expect absent". A mismatch answers -CONFLICT and
		// hands the race back to the client.
		if len(args) != 4 {
			w.WriteError("ERR wrong number of arguments for 'cas' command")
			return false
		}
		if _, err := s.cl.CompareAndSwap(args[1], args[2], args[3]); err != nil {
			w.WriteError(txnErrReply(err))
			return false
		}
		w.WriteSimple("OK")
	case "MULTI":
		cs.multi = true
		cs.queue = cs.queue[:0]
		cs.multiErr = false
		w.WriteSimple("OK")
	case "EXEC":
		if !cs.multi {
			w.WriteError("ERR EXEC without MULTI")
			return false
		}
		ops := cs.queue
		poisoned := cs.multiErr
		cs.multi, cs.queue, cs.multiErr = false, nil, false
		switch {
		case poisoned:
			w.WriteError("EXECABORT Transaction discarded because of previous errors.")
		case len(ops) == 0:
			w.WriteArrayHeader(0)
		default:
			if _, err := s.cl.AtomicExec(ops); err != nil {
				w.WriteError(txnErrReply(err))
				return false
			}
			w.WriteArrayHeader(len(ops))
			for range ops {
				w.WriteSimple("OK")
			}
		}
	case "DISCARD":
		if !cs.multi {
			w.WriteError("ERR DISCARD without MULTI")
			return false
		}
		cs.multi, cs.queue, cs.multiErr = false, nil, false
		w.WriteSimple("OK")
	case "FLEET":
		s.dispatchFleet(w, args)
	default:
		w.WriteError("ERR unknown command '" + sanitizeLine(string(args[0])) + "'")
	}
	return false
}

// dispatchFleet handles FLEET STATUS | KILL <id> [powercut|grownbad] |
// REBUILD <id> | RMSHARD <id>. Topology commands run on the connection
// goroutine, concurrent with the shard loops — the fleet's member and
// topology locks make that safe — so traffic keeps flowing while a rebuild
// or a removal streams keys. AddShard is deliberately not exposed over the
// wire: the bridge pins one loop per member at startup, and a member born
// mid-flight would have no loop to serve it.
func (s *Server) dispatchFleet(w *respWriter, args [][]byte) {
	if s.cl.Replication().Factor == 0 {
		w.WriteError("ERR fleet commands need a replicated cluster (start anykeyserver with -replication)")
		return
	}
	if len(args) < 2 {
		w.WriteError("ERR wrong number of arguments for 'fleet' command")
		return
	}
	memberArg := func() (int, bool) {
		if len(args) < 3 {
			w.WriteError("ERR fleet " + strings.ToLower(string(args[1])) + " needs a member id")
			return 0, false
		}
		id, err := strconv.Atoi(string(args[2]))
		if err != nil {
			w.WriteError("ERR invalid member id " + sanitizeLine(string(args[2])))
			return 0, false
		}
		return id, true
	}
	switch strings.ToUpper(string(args[1])) {
	case "STATUS":
		fs, err := s.cl.FleetStats()
		if err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "factor:%d\r\nwrite_quorum:%d\r\nread_mode:%s\r\n",
			fs.Repl.Factor, fs.Repl.WriteQuorum, fs.Repl.ReadMode)
		fmt.Fprintf(&sb, "epoch:%d\r\nmigration_active:%d\r\nring_members:%d\r\ndead_members:%d\r\n",
			fs.Repl.Epoch, int(b2f(fs.Repl.MigrationActive)), fs.Repl.RingMembers, fs.Repl.DeadMembers)
		fmt.Fprintf(&sb, "quorum_failures:%d\r\nread_fallbacks:%d\r\nread_repairs:%d\r\n",
			fs.Repl.QuorumFailures, fs.Repl.ReadFallbacks, fs.Repl.ReadRepairs)
		fmt.Fprintf(&sb, "migrated_keys:%d\r\nmigrated_bytes:%d\r\ncleanup_deletes:%d\r\n",
			fs.Repl.MigratedKeys, fs.Repl.MigratedBytes, fs.Repl.CleanupDeletes)
		fmt.Fprintf(&sb, "rebuilds:%d\r\nrebuilt_keys:%d\r\n", fs.Repl.Rebuilds, fs.Repl.RebuiltKeys)
		for _, m := range fs.Members {
			state := m.State
			if m.Cause != "" {
				state += "(" + m.Cause + ")"
			}
			fmt.Fprintf(&sb, "member%d:%s\r\n", m.Shard, state)
		}
		w.WriteBulk([]byte(sb.String()))
	case "KILL":
		id, ok := memberArg()
		if !ok {
			return
		}
		cause := anykey.KillPowerCut
		if len(args) == 4 {
			switch strings.ToLower(string(args[3])) {
			case "powercut":
				cause = anykey.KillPowerCut
			case "grownbad":
				cause = anykey.KillGrownBad
			default:
				w.WriteError("ERR unknown kill cause " + sanitizeLine(string(args[3])) + " (powercut | grownbad)")
				return
			}
		}
		if err := s.cl.KillShard(id, cause); err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		w.WriteSimple("OK")
	case "REBUILD":
		id, ok := memberArg()
		if !ok {
			return
		}
		rb, err := s.cl.RebuildShard(id)
		if err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		if err := rb.Run(); err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		_, _, keys := rb.Progress()
		w.WriteInt(keys)
	case "RMSHARD":
		id, ok := memberArg()
		if !ok {
			return
		}
		mig, err := s.cl.RemoveShard(id)
		if err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		if err := mig.Run(); err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		fs, err := s.cl.FleetStats()
		if err != nil {
			w.WriteError("ERR " + err.Error())
			return
		}
		w.WriteInt(fs.Repl.MigratedKeys)
	default:
		w.WriteError("ERR unknown fleet subcommand '" + sanitizeLine(string(args[1])) + "'")
	}
}

// txnErrReply maps a transaction-layer error to its RESP error line: an
// undecided 2PC commit answers -INDOUBT (the client must not assume either
// outcome), retry exhaustion -TXNABORT (it wraps both retry sentinels —
// checked next), a validation or compare failure -CONFLICT, anything else
// -ERR.
func txnErrReply(err error) string {
	switch {
	case errors.Is(err, anykey.ErrTxnInDoubt):
		return "INDOUBT " + err.Error()
	case errors.Is(err, anykey.ErrTxnAborted):
		return "TXNABORT " + err.Error()
	case errors.Is(err, anykey.ErrTxnConflict):
		return "CONFLICT " + err.Error()
	default:
		return "ERR " + err.Error()
	}
}

// doRawWrite runs a raw write batch (SET/DEL/MSET) through the transaction
// layer's write barrier: the cluster merges any split-phase buffer covering
// the keys, holds the coordinator quiesced while the shard loops execute
// the writes, and bumps the keys' OCC versions — so an INCR/CAS/EXEC racing
// a raw write conflicts and retries instead of committing a value derived
// from the pre-write state. Raw reads (GET/MGET/SCAN) take no barrier: they
// cannot lose updates, but they observe shard state directly and may see a
// MULTI/EXEC batch mid-apply — clients that need atomic visibility read
// through the transactional commands.
func (s *Server) doRawWrite(reqs []*request) ([]response, string) {
	keys := make([][]byte, len(reqs))
	for i, r := range reqs {
		keys[i] = r.key
	}
	var resps []response
	var errReply string
	if err := s.cl.RawWrite(keys, func() error {
		resps, errReply = s.doStorage(reqs)
		return nil
	}); err != nil {
		// Only the pre-write split-phase merge can fail here; the writes
		// themselves never ran.
		return resps, "ERR " + err.Error()
	}
	return resps, errReply
}

// doStorage stamps one wall arrival for the batch, fans each request out to
// its shard loop and gathers the responses in order. The second return is a
// non-empty RESP error line when the whole command should fail.
func (s *Server) doStorage(reqs []*request) ([]response, string) {
	wall := time.Now()
	submitted := make([]bool, len(reqs))
	anyShed := false
	for i, req := range reqs {
		req.wall = wall
		req.resp = make(chan response, 1)
		shard := s.cl.ShardFor(req.key)
		if !s.br.submit(shard, req) {
			anyShed = true
			continue
		}
		submitted[i] = true
	}
	resps := make([]response, len(reqs))
	var firstErr error
	for i := range reqs {
		if !submitted[i] {
			continue
		}
		resps[i] = <-reqs[i].resp
		if resps[i].err != nil && firstErr == nil {
			firstErr = resps[i].err
		}
	}
	if anyShed {
		return resps, "BUSY shard queue full, retry"
	}
	if firstErr != nil {
		return resps, "ERR " + firstErr.Error()
	}
	return resps, ""
}

// dispatchScan fans one range query out to every shard, merges the sorted
// sub-results and replies [next-cursor, flat pairs].
func (s *Server) dispatchScan(w *respWriter, start []byte, n int) {
	wall := time.Now()
	shards := s.cl.Shards()
	reqs := make([]*request, shards)
	submitted := make([]bool, shards)
	anyShed := false
	for sh := 0; sh < shards; sh++ {
		reqs[sh] = &request{op: opScan, start: start, n: n, wall: wall,
			resp: make(chan response, 1)}
		if !s.br.submit(sh, reqs[sh]) {
			anyShed = true
			continue
		}
		submitted[sh] = true
	}
	var pairs []anykey.Pair
	var firstErr error
	timedOut := false
	for sh := 0; sh < shards; sh++ {
		if !submitted[sh] {
			continue
		}
		rp := <-reqs[sh].resp
		if rp.err != nil && firstErr == nil {
			firstErr = rp.err
		}
		timedOut = timedOut || rp.timedOut
		pairs = append(pairs, rp.pairs...)
	}
	switch {
	case anyShed:
		w.WriteError("BUSY shard queue full, retry")
		return
	case firstErr != nil:
		w.WriteError("ERR " + firstErr.Error())
		return
	case timedOut:
		w.WriteError("TIMEOUT virtual latency budget exceeded")
		return
	}
	// Each shard's slice is sorted; a full sort of the union keeps this
	// simple at the fan-out sizes a SCAN page allows.
	sort.Slice(pairs, func(i, j int) bool {
		return bytes.Compare(pairs[i].Key, pairs[j].Key) < 0
	})
	if len(pairs) > n {
		pairs = pairs[:n]
	}
	cursor := []byte{}
	if len(pairs) == n && n > 0 {
		// More may remain: resume just after the last key returned.
		last := pairs[len(pairs)-1].Key
		cursor = append(append([]byte(nil), last...), 0)
	}
	w.WriteArrayHeader(2)
	w.WriteBulk(cursor)
	w.WriteArrayHeader(2 * len(pairs))
	for _, p := range pairs {
		w.WriteBulk(p.Key)
		w.WriteBulk(p.Value)
	}
}

// info renders the INFO reply: a Redis-style sectioned text block.
func (s *Server) info() string {
	st := s.cl.Stats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Server\r\n")
	fmt.Fprintf(&sb, "uptime_seconds:%d\r\n", int64(time.Since(s.started).Seconds()))
	fmt.Fprintf(&sb, "time_scale:%g\r\n", s.cfg.TimeScale)
	fmt.Fprintf(&sb, "shards:%d\r\n", st.Shards)
	fmt.Fprintf(&sb, "# Cluster\r\n")
	fmt.Fprintf(&sb, "ops:%d\r\n", st.Ops)
	fmt.Fprintf(&sb, "virtual_clock_seconds:%.6f\r\n", float64(st.Now)/1e9)
	fmt.Fprintf(&sb, "live_keys:%d\r\n", st.LiveKeys)
	fmt.Fprintf(&sb, "live_bytes:%d\r\n", st.LiveBytes)
	fmt.Fprintf(&sb, "flash_writes:%d\r\n", st.Flash.TotalWrites())
	fmt.Fprintf(&sb, "gc_runs:%d\r\n", st.GCRuns)
	ts := s.cl.TxnStats()
	fmt.Fprintf(&sb, "# Transactions\r\n")
	fmt.Fprintf(&sb, "txn_commits:%d\r\n", ts.Commits)
	fmt.Fprintf(&sb, "txn_aborts:%d\r\n", ts.Aborts)
	fmt.Fprintf(&sb, "txn_conflicts:%d\r\n", ts.Conflicts)
	fmt.Fprintf(&sb, "txn_retries:%d\r\n", ts.Retries)
	fmt.Fprintf(&sb, "txn_atomic_batches:%d\r\n", ts.AtomicBatches)
	fmt.Fprintf(&sb, "txn_prepares:%d\r\n", ts.Prepares)
	fmt.Fprintf(&sb, "txn_split_merges:%d\r\n", ts.SplitMerges)
	fmt.Fprintf(&sb, "txn_split_ops:%d\r\n", ts.SplitOps)
	fmt.Fprintf(&sb, "txn_hot_keys:%d\r\n", ts.HotKeys)
	fmt.Fprintf(&sb, "txn_rolled_forward:%d\r\n", ts.RolledForward)
	fmt.Fprintf(&sb, "txn_rolled_back:%d\r\n", ts.RolledBack)
	fmt.Fprintf(&sb, "# Memory\r\n")
	fmt.Fprintf(&sb, "store_mode:%s\r\n", st.Store.Mode)
	fmt.Fprintf(&sb, "store_live_pages:%d\r\n", st.Store.LivePages)
	fmt.Fprintf(&sb, "store_logical_bytes:%d\r\n", st.Store.LogicalBytes)
	fmt.Fprintf(&sb, "store_resident_bytes:%d\r\n", st.Store.ResidentBytes)
	if cs := st.Cache; cs != nil {
		fmt.Fprintf(&sb, "# Cache\r\n")
		fmt.Fprintf(&sb, "cache_hits:%d\r\n", cs.Hits)
		fmt.Fprintf(&sb, "cache_misses:%d\r\n", cs.Misses)
		fmt.Fprintf(&sb, "cache_admitted:%d\r\n", cs.Admitted)
		fmt.Fprintf(&sb, "cache_evicted:%d\r\n", cs.Evicted)
		fmt.Fprintf(&sb, "cache_bytes:%d\r\n", cs.Bytes)
		fmt.Fprintf(&sb, "cache_entries:%d\r\n", cs.Entries)
	}
	if fs, err := s.cl.FleetStats(); err == nil {
		fmt.Fprintf(&sb, "# Replication\r\n")
		fmt.Fprintf(&sb, "replication_factor:%d\r\n", fs.Repl.Factor)
		fmt.Fprintf(&sb, "write_quorum:%d\r\n", fs.Repl.WriteQuorum)
		fmt.Fprintf(&sb, "read_mode:%s\r\n", fs.Repl.ReadMode)
		fmt.Fprintf(&sb, "epoch:%d\r\n", fs.Repl.Epoch)
		fmt.Fprintf(&sb, "ring_members:%d\r\n", fs.Repl.RingMembers)
		fmt.Fprintf(&sb, "dead_members:%d\r\n", fs.Repl.DeadMembers)
		fmt.Fprintf(&sb, "quorum_failures:%d\r\n", fs.Repl.QuorumFailures)
		fmt.Fprintf(&sb, "read_fallbacks:%d\r\n", fs.Repl.ReadFallbacks)
		fmt.Fprintf(&sb, "migrated_keys:%d\r\n", fs.Repl.MigratedKeys)
		fmt.Fprintf(&sb, "rebuilds:%d\r\n", fs.Repl.Rebuilds)
	}
	for _, ss := range st.PerShard {
		fmt.Fprintf(&sb, "# Shard%d\r\n", ss.Shard)
		fmt.Fprintf(&sb, "ops:%d\r\n", ss.Ops)
		fmt.Fprintf(&sb, "virtual_clock_seconds:%.6f\r\n", float64(ss.Now)/1e9)
		fmt.Fprintf(&sb, "live_keys:%d\r\n", ss.LiveKeys)
	}
	return sb.String()
}

// Shutdown gracefully stops the server: it refuses new connections, turns
// /healthz unhealthy, lets in-flight commands finish, drains the bridge
// loops, then closes the cluster. The context bounds the connection drain;
// on expiry remaining connections are closed forcibly. Safe to call more
// than once; later calls return the first outcome.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.shutdown(ctx) })
	return s.shutdownErr
}

func (s *Server) shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()

	// Wake every connection blocked in a read: the expired deadline fails
	// the next socket read, while commands already parsed still execute
	// and their replies still flush (writes keep their own deadline).
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() { s.connWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-drained
	}

	// Every connection handler has exited, so nothing submits to the
	// bridge anymore; drain the shard queues.
	s.br.close()

	var errs []error
	if _, err := s.cl.Sync(); err != nil {
		errs = append(errs, fmt.Errorf("final sync: %w", err))
	}
	if err := s.closeCluster(); err != nil {
		errs = append(errs, fmt.Errorf("close cluster: %w", err))
	}
	if s.hs != nil {
		hctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := s.hs.Shutdown(hctx); err != nil {
			errs = append(errs, fmt.Errorf("metrics endpoint: %w", err))
		}
	}
	return errors.Join(errs...)
}
