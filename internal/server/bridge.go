package server

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"anykey"
	"anykey/internal/trace"
)

// opKind enumerates the storage operations a bridge request can carry.
type opKind uint8

const (
	opGet opKind = iota
	opSet
	opDel
	opScan
	numOps
)

var opNames = [numOps]string{"get", "set", "del", "scan"}

// request is one unit of work routed to a shard loop. Wall is the real
// instant the connection handler accepted the command — the bridge maps it
// onto the owning shard's virtual clock.
type request struct {
	op    opKind
	key   []byte
	value []byte
	start []byte // scan: first key
	n     int    // scan: max pairs
	wall  time.Time
	resp  chan response

	// hold, when non-nil, parks the shard loop until it is closed — a test
	// hook for exercising queue saturation deterministically. The loop
	// closes held (when non-nil) once it is parked, so a test can wait for
	// the queue slot to actually free before filling the queue.
	hold chan struct{}
	held chan struct{}
}

// response is a shard loop's answer. Values and pairs are copies owned by
// the receiver — the shard device's buffers never cross the channel.
type response struct {
	comp     anykey.Completion
	value    []byte
	pairs    []anykey.Pair
	found    bool // Get: key present
	err      error
	timedOut bool // virtual latency exceeded the configured timeout
}

// Bridge maps wall-clock request arrivals onto per-shard virtual clock
// domains. One goroutine per shard owns that shard's event loop: it is the
// only goroutine that submits operations to the shard and the only one that
// touches the shard's tracer, preserving the engine's single-caller
// discipline while real clients connect concurrently.
//
// The mapping is linear per shard: at bridge start the wall epoch W₀ and
// each shard's virtual clock V₀[s] are read once; a request arriving at
// wall time w is submitted open-loop at virtual arrival
//
//	V₀[s] + scale·(w − W₀)
//
// so wall-clock gaps between requests become virtual idle gaps, wall-clock
// bursts become virtual queueing, and scale compresses or stretches real
// time into simulated time. The engine's non-decreasing-issue watermark
// absorbs requests whose mapped arrival lands before a previously issued
// one.
//
// Backpressure is a bounded per-shard queue: submit is non-blocking and the
// caller sheds with a RESP -BUSY when the loop is saturated. Timeouts are
// virtual: a completion whose simulated latency exceeds the configured
// budget reports timedOut and the connection answers -TIMEOUT, mirroring
// the open-loop harness's timeout accounting.
type Bridge struct {
	cl         *anykey.Cluster
	scale      float64
	timeout    anykey.Duration // virtual latency budget; 0 = unlimited
	blameEvery int             // refresh blame gauges every N ops per shard

	wallEpoch time.Time
	loops     []*shardLoop
	met       *serverMetrics
	wg        sync.WaitGroup
}

type shardLoop struct {
	shard int
	reqs  chan *request
}

// newBridge starts one event loop per shard. inflight bounds each shard's
// queued-but-unanswered requests.
func newBridge(cl *anykey.Cluster, scale float64, timeout anykey.Duration,
	inflight, blameEvery int, met *serverMetrics) *Bridge {
	b := &Bridge{
		cl:         cl,
		scale:      scale,
		timeout:    timeout,
		blameEvery: blameEvery,
		wallEpoch:  time.Now(),
		met:        met,
	}
	for s := 0; s < cl.Shards(); s++ {
		l := &shardLoop{shard: s, reqs: make(chan *request, inflight)}
		b.loops = append(b.loops, l)
		met.inflight.WithFunc(func() float64 { return float64(len(l.reqs)) },
			strconv.Itoa(s))
		b.wg.Add(1)
		go b.run(l)
	}
	return b
}

// virtualArrival maps a wall instant onto shard s's clock domain.
func (b *Bridge) virtualArrival(virtEpoch anykey.Time, wall time.Time) anykey.Time {
	elapsed := float64(wall.Sub(b.wallEpoch).Nanoseconds())
	if elapsed < 0 {
		elapsed = 0
	}
	return virtEpoch + anykey.Time(elapsed*b.scale)
}

// submit routes req to shard's loop without blocking. False means the
// loop's queue is full and the request was shed.
func (b *Bridge) submit(shard int, req *request) bool {
	select {
	case b.loops[shard].reqs <- req:
		return true
	default:
		b.met.shed.With(strconv.Itoa(shard)).Inc()
		return false
	}
}

// close stops every loop after the remaining queued requests drain, then
// waits for the loops to exit. Callers must guarantee no further submit
// calls — the server does so by joining every connection handler first.
func (b *Bridge) close() {
	for _, l := range b.loops {
		close(l.reqs)
	}
	b.wg.Wait()
}

// run is one shard's event loop.
func (b *Bridge) run(l *shardLoop) {
	defer b.wg.Done()
	shard := strconv.Itoa(l.shard)
	virtEpoch := b.cl.ShardNow(l.shard)
	var tr *anykey.Tracer
	if trs := b.cl.Tracers(); trs != nil {
		tr = trs[l.shard]
	}
	sinceBlame := 0
	for req := range l.reqs {
		if req.hold != nil {
			if req.held != nil {
				close(req.held)
			}
			<-req.hold
		}
		arrival := b.virtualArrival(virtEpoch, req.wall)
		resp := b.execute(l.shard, arrival, req)

		if resp.err == nil {
			lat := resp.comp.Latency()
			b.met.ops.With(shard, opNames[req.op]).Inc()
			b.met.latency.With(shard).Observe(lat.Seconds())
			b.met.queueWait.With(shard).Observe(resp.comp.QueueWait().Seconds())
			if b.timeout > 0 && lat > b.timeout {
				resp.timedOut = true
				b.met.timeouts.With(shard).Inc()
			}
		} else {
			b.met.opErrors.With(shard).Inc()
		}
		req.resp <- resp

		if tr != nil {
			if sinceBlame++; sinceBlame >= b.blameEvery {
				sinceBlame = 0
				b.refreshBlame(shard, tr)
			}
		}
	}
}

// execute performs one operation against the cluster. Only the owning
// shard loop calls it for a given shard.
func (b *Bridge) execute(shard int, arrival anykey.Time, req *request) response {
	var resp response
	switch req.op {
	case opSet:
		comp, _, err := b.cl.PutAt(arrival, req.key, req.value)
		resp.comp, resp.err = comp, err
	case opGet:
		comp, _, err := b.cl.GetAt(arrival, req.key)
		resp.comp = comp
		switch {
		case err == nil:
			resp.found = true
			resp.value = append([]byte(nil), comp.Value...)
		case errors.Is(err, anykey.ErrNotFound):
			// A miss is a successful operation with a null reply.
		default:
			resp.err = err
		}
	case opDel:
		comp, _, err := b.cl.DeleteAt(arrival, req.key)
		resp.comp, resp.err = comp, err
	case opScan:
		comp, err := b.cl.ScanShardAt(shard, arrival, req.start, req.n)
		resp.comp, resp.err = comp, err
		if err == nil && len(comp.Pairs) > 0 {
			resp.pairs = make([]anykey.Pair, len(comp.Pairs))
			for i, p := range comp.Pairs {
				resp.pairs[i] = anykey.Pair{
					Key:   append([]byte(nil), p.Key...),
					Value: append([]byte(nil), p.Value...),
				}
			}
		}
	}
	return resp
}

// refreshBlame recomputes tail-latency attribution from the shard's tracer
// and publishes it as gauges. It runs inside the owning shard loop — the
// tracer ring is not safe for concurrent access, so the scrape path never
// touches it; scrapers read these gauges instead.
func (b *Bridge) refreshBlame(shard string, tr *anykey.Tracer) {
	rep := tr.Blame(anykey.BlameOptions{Percentile: 99, MaxOps: 1})
	if rep == nil {
		return
	}
	b.met.blameThreshold.With(shard).Set(rep.Threshold.Seconds())
	for c := trace.Cause(0); c < trace.NumCauses; c++ {
		b.met.blame.With(shard, c.String()).Set(rep.Summary[c].Seconds())
	}
}
