package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"anykey"
)

func TestServerTxnCommands(t *testing.T) {
	s, addr := startServer(t, testConfig())
	c := dialT(t, addr)

	// INCR / INCRBY: counter semantics from absent.
	if rp, err := c.Do("INCR", "ctr"); err != nil || rp.Int != 1 {
		t.Fatalf("INCR: %+v, %v", rp, err)
	}
	if rp, err := c.Do("INCRBY", "ctr", "41"); err != nil || rp.Int != 42 {
		t.Fatalf("INCRBY: %+v, %v", rp, err)
	}
	if rp, err := c.Do("INCRBY", "ctr", "-2"); err != nil || rp.Int != 40 {
		t.Fatalf("INCRBY negative: %+v, %v", rp, err)
	}
	if rp, err := c.Do("INCRBY", "ctr", "nope"); err != nil || rp.Kind != '-' {
		t.Fatalf("INCRBY bad delta: %+v, %v", rp, err)
	}
	if rp, err := c.Do("SET", "text", "abc"); err != nil || rp.Str != "OK" {
		t.Fatalf("SET: %+v, %v", rp, err)
	}
	if rp, err := c.Do("INCR", "text"); err != nil || rp.Kind != '-' {
		t.Fatalf("INCR non-numeric: %+v, %v", rp, err)
	}

	// APPEND builds up a value.
	if rp, err := c.Do("APPEND", "log", "ab"); err != nil || rp.Str != "OK" {
		t.Fatalf("APPEND: %+v, %v", rp, err)
	}
	if rp, err := c.Do("APPEND", "log", "cd"); err != nil || rp.Str != "OK" {
		t.Fatalf("APPEND 2: %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET", "log"); err != nil || string(rp.Bulk) != "abcd" {
		t.Fatalf("GET log: %+v, %v", rp, err)
	}

	// CAS: expect-absent, then swap, then a mismatch answers -CONFLICT.
	if rp, err := c.Do("CAS", "cas", "", "init"); err != nil || rp.Str != "OK" {
		t.Fatalf("CAS absent: %+v, %v", rp, err)
	}
	if rp, err := c.Do("CAS", "cas", "init", "next"); err != nil || rp.Str != "OK" {
		t.Fatalf("CAS swap: %+v, %v", rp, err)
	}
	rp, err := c.Do("CAS", "cas", "init", "never")
	if err != nil || rp.Kind != '-' || !strings.HasPrefix(rp.Str, "CONFLICT") {
		t.Fatalf("CAS mismatch: %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET", "cas"); err != nil || string(rp.Bulk) != "next" {
		t.Fatalf("GET cas: %+v, %v", rp, err)
	}

	// MULTI … EXEC commits an atomic cross-shard batch.
	if rp, err := c.Do("MULTI"); err != nil || rp.Str != "OK" {
		t.Fatalf("MULTI: %+v, %v", rp, err)
	}
	if rp, err := c.Do("SET", "ma", "1"); err != nil || rp.Str != "QUEUED" {
		t.Fatalf("queued SET: %+v, %v", rp, err)
	}
	if rp, err := c.Do("SET", "mb", "2"); err != nil || rp.Str != "QUEUED" {
		t.Fatalf("queued SET 2: %+v, %v", rp, err)
	}
	if rp, err := c.Do("DEL", "text"); err != nil || rp.Str != "QUEUED" {
		t.Fatalf("queued DEL: %+v, %v", rp, err)
	}
	rp, err = c.Do("EXEC")
	if err != nil || rp.Kind != '*' || len(rp.Array) != 3 {
		t.Fatalf("EXEC: %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET", "mb"); err != nil || string(rp.Bulk) != "2" {
		t.Fatalf("GET after EXEC: %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET", "text"); err != nil || !rp.Null {
		t.Fatalf("deleted key after EXEC: %+v, %v", rp, err)
	}

	// DISCARD abandons the queue.
	c.Do("MULTI")
	c.Do("SET", "discarded", "x")
	if rp, err := c.Do("DISCARD"); err != nil || rp.Str != "OK" {
		t.Fatalf("DISCARD: %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET", "discarded"); err != nil || !rp.Null {
		t.Fatalf("discarded write landed: %+v, %v", rp, err)
	}

	// Block hygiene: EXEC/DISCARD without MULTI, nested MULTI, a poisoned
	// block answering -EXECABORT, and an empty block.
	if rp, _ := c.Do("EXEC"); rp.Kind != '-' {
		t.Fatalf("EXEC without MULTI: %+v", rp)
	}
	if rp, _ := c.Do("DISCARD"); rp.Kind != '-' {
		t.Fatalf("DISCARD without MULTI: %+v", rp)
	}
	c.Do("MULTI")
	if rp, _ := c.Do("MULTI"); rp.Kind != '-' {
		t.Fatalf("nested MULTI: %+v", rp)
	}
	if rp, _ := c.Do("GET", "ma"); rp.Kind != '-' {
		t.Fatalf("GET inside MULTI should refuse to queue: %+v", rp)
	}
	rp, _ = c.Do("EXEC")
	if rp.Kind != '-' || !strings.HasPrefix(rp.Str, "EXECABORT") {
		t.Fatalf("poisoned EXEC: %+v", rp)
	}
	c.Do("MULTI")
	if rp, _ := c.Do("EXEC"); rp.Kind != '*' || len(rp.Array) != 0 {
		t.Fatalf("empty EXEC: %+v", rp)
	}

	// INFO carries the # Transactions section; /metrics the txn families.
	rp, err = c.Do("INFO")
	if err != nil || !strings.Contains(string(rp.Bulk), "# Transactions") {
		t.Fatalf("INFO missing transactions section: %v", err)
	}
	if !strings.Contains(string(rp.Bulk), "txn_commits:") {
		t.Fatalf("INFO missing txn_commits:\n%s", rp.Bulk)
	}
	resp, err := http.Get("http://" + s.MetricsAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"anykey_txn_commits_total",
		"anykey_txn_aborts_total",
		"anykey_txn_retries_total",
		"anykey_txn_split_merges_total",
	} {
		if !strings.Contains(string(body), family) {
			t.Fatalf("/metrics missing %s", family)
		}
	}
}

// TestServerTxnSoak drives MULTI/EXEC batches and shared-counter INCRs from
// concurrent clients against a replicated fleet, kills a member mid-run, and
// checks the survivors' invariants: every acknowledged batch is fully
// visible, and the shared counter ends between the acknowledged and the
// attempted increment totals.
func TestServerTxnSoak(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.Replication = anykey.ReplicationOptions{Factor: 2, WriteQuorum: 2}
	_, addr := startServer(t, cfg)

	const clients = 4
	const rounds = 60
	type batchRec struct {
		keys []string
		val  string
	}
	ackedIncr := make([]int64, clients)
	ackedBatches := make([][]batchRec, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c := dialT(t, addr)
			for r := 0; r < rounds; r++ {
				if cl == 0 && r == rounds/2 {
					if rp, err := c.Do("FLEET", "KILL", "1", "powercut"); err != nil || rp.Kind == '-' {
						t.Errorf("FLEET KILL: %+v, %v", rp, err)
					}
				}
				if rp, err := c.Do("INCR", "soak:ctr"); err != nil {
					t.Errorf("client %d INCR transport: %v", cl, err)
					return
				} else if rp.Kind == ':' {
					ackedIncr[cl]++
				}
				if r%3 != 0 {
					continue
				}
				rec := batchRec{val: fmt.Sprintf("v%02d-%03d", cl, r)}
				for k := 0; k < 3; k++ {
					rec.keys = append(rec.keys, fmt.Sprintf("soak:%02d:%03d:%d", cl, r, k))
				}
				c.Do("MULTI")
				for _, k := range rec.keys {
					c.Do("SET", k, rec.val)
				}
				if rp, err := c.Do("EXEC"); err != nil {
					t.Errorf("client %d EXEC transport: %v", cl, err)
					return
				} else if rp.Kind == '*' {
					ackedBatches[cl] = append(ackedBatches[cl], rec)
				}
			}
		}(cl)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	c := dialT(t, addr)
	var acked, attempts int64
	for cl := 0; cl < clients; cl++ {
		acked += ackedIncr[cl]
		attempts += rounds
	}
	if acked == 0 {
		t.Fatal("no increment was ever acknowledged")
	}
	rp, err := c.Do("INCRBY", "soak:ctr", "0")
	if err != nil || rp.Kind != ':' {
		t.Fatalf("final INCRBY 0: %+v, %v", rp, err)
	}
	// Acknowledged increments are quorum-durable and survive the kill; an
	// unacknowledged attempt may still have landed on a survivor, so the
	// final value is bounded by attempts, not equal to acked.
	if rp.Int < acked || rp.Int > attempts {
		t.Fatalf("counter %d outside [acked %d, attempts %d]", rp.Int, acked, attempts)
	}

	// Every acknowledged batch is fully visible — replica fallback serves
	// the dead member's share.
	for cl := 0; cl < clients; cl++ {
		for _, rec := range ackedBatches[cl] {
			for _, k := range rec.keys {
				rp, err := c.Do("GET", k)
				if err != nil || string(rp.Bulk) != rec.val {
					t.Fatalf("acked batch key %s: %+v, %v", k, rp, err)
				}
			}
		}
	}

	// The transaction counters made it into INFO.
	rp, err = c.Do("INFO")
	if err != nil || !strings.Contains(string(rp.Bulk), "# Transactions") {
		t.Fatalf("INFO after soak: %v", err)
	}
}
