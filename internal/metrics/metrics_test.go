package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	g := r.NewGauge("inflight", "In-flight requests.")
	g.Set(5)
	g.Add(-2)
	r.NewGaugeFunc("answer", "Scrape-time gauge.", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP answer Scrape-time gauge.\n" +
		"# TYPE answer gauge\n" +
		"answer 42\n" +
		"# HELP inflight In-flight requests.\n" +
		"# TYPE inflight gauge\n" +
		"inflight 3\n" +
		"# HELP requests_total Total requests.\n" +
		"# TYPE requests_total counter\n" +
		"requests_total 3\n"
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestLabelledFamiliesSortDeterministically(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("ops_total", "Ops by shard and kind.", "shard", "op")
	v.With("1", "get").Add(4)
	v.With("0", "set").Add(2)
	v.With("0", "get").Add(1)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP ops_total Ops by shard and kind.\n" +
		"# TYPE ops_total counter\n" +
		`ops_total{shard="0",op="get"} 1` + "\n" +
		`ops_total{shard="0",op="set"} 2` + "\n" +
		`ops_total{shard="1",op="get"} 4` + "\n"
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n got %q\nwant %q", sb.String(), want)
	}
	// The same child is returned for the same label values.
	if got := v.With("1", "get").Value(); got != 4 {
		t.Fatalf("child not cached: %v", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 99} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`latency_seconds_bucket{le="0.001"} 1`,
		`latency_seconds_bucket{le="0.01"} 3`,
		`latency_seconds_bucket{le="0.1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("missing %q in:\n%s", want, sb.String())
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 5)
	want := []float64{1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4}
	for i := range want {
		if diff := b[i] - want[i]; diff > 1e-18 || diff < -1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("g", "", "name")
	v.With(`a"b\c` + "\n").Set(1)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `g{name="a\"b\\c\n"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("got %q, want substring %q", sb.String(), want)
	}
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("ops_total", "", "shard")
	h := r.NewHistogramVec("lat", "", ExpBuckets(1e-6, 2, 10), "shard")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := string(rune('0' + i%4))
			for j := 0; j < 1000; j++ {
				c.With(sh).Inc()
				h.With(sh).Observe(float64(j) * 1e-6)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			_ = r.WriteText(&sb)
		}()
	}
	wg.Wait()
	var total float64
	for i := 0; i < 4; i++ {
		total += c.With(string(rune('0' + i))).Value()
	}
	if total != 8000 {
		t.Fatalf("lost updates: total = %v, want 8000", total)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1\n") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestOnScrapeHookRuns(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("refreshed", "")
	n := 0
	r.OnScrape(func() { n++; g.Set(float64(n)) })
	var sb strings.Builder
	_ = r.WriteText(&sb)
	_ = r.WriteText(&sb)
	if n != 2 || g.Value() != 2 {
		t.Fatalf("hook ran %d times, gauge %v", n, g.Value())
	}
}
