// Package metrics is a dependency-free implementation of the Prometheus
// text exposition format (version 0.0.4): counters, gauges and fixed-bucket
// histograms, optionally labelled, collected into a Registry that renders
// itself deterministically over HTTP. It exists so the network server can
// expose live per-shard observability without pulling the Prometheus client
// library into a repo that is otherwise stdlib-only.
//
// Metric updates are lock-free (atomics); families and label children are
// created under the registry lock and never removed, so a scrape sees a
// consistent set. Exposition sorts families by name and children by label
// values, so two scrapes of the same state render byte-identically — the
// same golden-output discipline the simulator's reports follow.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the Prometheus metric type of a family.
type Kind string

// The exposition TYPE strings.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds metric families and renders them in the text exposition
// format.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// beforeScrape hooks run (in registration order) at the top of every
	// WriteText call, letting callers refresh scraped gauges from sources
	// that are cheaper to snapshot than to instrument (e.g. cluster stats).
	beforeScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with its labelled children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string  // label names shared by every child
	buckets []float64 // histogram upper bounds (histograms only)

	mu       sync.Mutex
	children map[string]child // key: joined label values
}

type child interface {
	write(w io.Writer, fam *family, labelValues []string)
}

// OnScrape registers fn to run at the start of every WriteText call.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.beforeScrape = append(r.beforeScrape, fn)
}

// register creates (or fetches) a family, enforcing kind/label consistency.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s re-registered with different schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), buckets: buckets,
		children: make(map[string]child),
	}
	r.families[name] = f
	return f
}

func (f *family) child(values []string, make func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	return c
}

// Counter is a monotonically increasing value. Set exists for counters that
// mirror an externally accumulated total (e.g. simulator statistics scraped
// on demand); ordinary instrumentation should only Add.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (must be non-negative).
func (c *Counter) Add(delta float64) { c.addBits(delta) }

// Set overwrites the counter with an externally tracked total.
func (c *Counter) Set(total float64) { c.v.Store(math.Float64bits(total)) }

// Value returns the current value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.v.Load()) }

func (c *Counter) addBits(delta float64) {
	for {
		old := c.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.v.CompareAndSwap(old, next) {
			return
		}
	}
}

func (c *Counter) write(w io.Writer, fam *family, lv []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(fam.labels, lv), formatFloat(c.Value()))
}

// Gauge is a value that can go up and down, or be computed at scrape time.
type Gauge struct {
	v  atomic.Uint64
	fn func() float64 // when non-nil, scrape calls it instead of reading v
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (calling the scrape function if set).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.v.Load())
}

func (g *Gauge) write(w io.Writer, fam *family, lv []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(fam.labels, lv), formatFloat(g.Value()))
}

// Histogram is a fixed-bucket histogram (cumulative le buckets, sum, count).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, non-cumulative; +Inf derived
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	total  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

func (h *Histogram) write(w io.Writer, fam *family, lv []string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
			renderLabels(append(fam.labels, "le"), append(append([]string(nil), lv...), formatFloat(b))), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
		renderLabels(append(fam.labels, "le"), append(append([]string(nil), lv...), "+Inf")), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, renderLabels(fam.labels, lv), formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(fam.labels, lv), h.total.Load())
}

// NewCounter registers an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child(nil, func() child { return &Counter{} }).(*Counter)
}

// NewGauge registers an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child(nil, func() child { return &Gauge{} }).(*Gauge)
}

// NewGaugeFunc registers a gauge computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.child(nil, func() child { return &Gauge{fn: fn} })
}

// NewHistogram registers an unlabelled histogram with the given ascending
// upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, bounds)
	return f.child(nil, func() child { return newHistogram(bounds) }).(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending")
	}
	return &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds))}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With returns (creating on first use) the child for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() child { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// With returns (creating on first use) the child for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() child { return &Gauge{} }).(*Gauge)
}

// WithFunc registers a scrape-time gauge for the label values.
func (v *GaugeVec) WithFunc(fn func() float64, values ...string) {
	v.f.child(values, func() child { return &Gauge{fn: fn} })
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// NewHistogramVec registers a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labels, bounds), bounds}
}

// With returns (creating on first use) the child for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() child { return newHistogram(v.bounds) }).(*Histogram)
}

// ExpBuckets returns n ascending bounds growing geometrically from start by
// factor — the usual latency-bucket shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// WriteText renders every family in the exposition format, deterministically
// ordered (families by name, children by label values).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.beforeScrape...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	kids := make(map[string]child, len(f.children))
	for k, c := range f.children {
		kids[k] = c
	}
	f.mu.Unlock()
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, k := range keys {
		var lv []string
		if k != "" || len(f.labels) > 0 {
			lv = strings.Split(k, "\xff")
			if len(f.labels) == 0 {
				lv = nil
			}
		}
		kids[k].write(w, f, lv)
	}
	return nil
}

// Handler returns an http.Handler serving the registry in the text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are connection failures; nothing to do.
		_ = r.WriteText(w)
	})
}

// renderLabels renders {k="v",...}, empty string when there are no labels.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: integral values
// without an exponent, +Inf spelled exactly so.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
