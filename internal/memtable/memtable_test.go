package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"anykey/internal/kv"
)

func TestPutGet(t *testing.T) {
	m := New(1)
	m.Put([]byte("b"), []byte("2"))
	m.Put([]byte("a"), []byte("1"))
	if e, ok := m.Get([]byte("a")); !ok || string(e.Value) != "1" {
		t.Fatalf("Get(a) = %+v %v", e, ok)
	}
	if _, ok := m.Get([]byte("c")); ok {
		t.Fatal("Get(c) found phantom key")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestOverwriteUpdatesBytes(t *testing.T) {
	m := New(1)
	m.Put([]byte("k"), []byte("short"))
	b0 := m.Bytes()
	m.Put([]byte("k"), []byte("much longer value"))
	if m.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", m.Len())
	}
	want := b0 - int64(len("short")) + int64(len("much longer value"))
	if m.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", m.Bytes(), want)
	}
}

func TestDeleteLeavesTombstone(t *testing.T) {
	m := New(1)
	m.Put([]byte("k"), []byte("v"))
	m.Delete([]byte("k"))
	e, ok := m.Get([]byte("k"))
	if !ok || !e.Tombstone {
		t.Fatalf("tombstone not visible: %+v %v", e, ok)
	}
	m.Delete([]byte("never-existed"))
	if e, ok := m.Get([]byte("never-existed")); !ok || !e.Tombstone {
		t.Fatal("tombstone for new key not buffered")
	}
}

func TestAllSorted(t *testing.T) {
	m := New(42)
	rng := rand.New(rand.NewSource(9))
	keys := map[string]bool{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(300))
		keys[k] = true
		m.Put([]byte(k), []byte("v"))
	}
	all := m.All()
	if len(all) != len(keys) {
		t.Fatalf("All returned %d entries, want %d", len(all), len(keys))
	}
	for i := 1; i < len(all); i++ {
		if kv.Compare(all[i-1].Key, all[i].Key) >= 0 {
			t.Fatalf("All not strictly sorted at %d: %q %q", i, all[i-1].Key, all[i].Key)
		}
	}
}

func TestAscendFrom(t *testing.T) {
	m := New(3)
	for _, k := range []string{"a", "c", "e", "g"} {
		m.Put([]byte(k), []byte(k))
	}
	var got []string
	m.AscendFrom([]byte("c"), func(e Entry) bool {
		got = append(got, string(e.Key))
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != "c" || got[1] != "e" {
		t.Fatalf("AscendFrom = %v", got)
	}
	// Start between keys.
	got = nil
	m.AscendFrom([]byte("b"), func(e Entry) bool {
		got = append(got, string(e.Key))
		return false
	})
	if len(got) != 1 || got[0] != "c" {
		t.Fatalf("AscendFrom(b) = %v", got)
	}
}

func TestReset(t *testing.T) {
	m := New(1)
	m.Put([]byte("k"), []byte("v"))
	m.Reset()
	if m.Len() != 0 || m.Bytes() != 0 || len(m.All()) != 0 {
		t.Fatal("Reset did not empty table")
	}
	m.Put([]byte("k2"), []byte("v2"))
	if m.Len() != 1 {
		t.Fatal("table unusable after Reset")
	}
}

// Property: the table agrees with a map oracle and All() is always sorted.
func TestOracleProperty(t *testing.T) {
	type op struct {
		Key byte
		Val []byte
		Del bool
	}
	f := func(ops []op, seed int64) bool {
		m := New(seed)
		oracle := map[string]Entry{}
		for _, o := range ops {
			k := []byte{o.Key % 32}
			if o.Del {
				m.Delete(k)
				oracle[string(k)] = Entry{Key: k, Tombstone: true}
			} else {
				m.Put(k, o.Val)
				oracle[string(k)] = Entry{Key: k, Value: o.Val}
			}
		}
		if m.Len() != len(oracle) {
			return false
		}
		var sum int64
		keys := make([]string, 0, len(oracle))
		for k, e := range oracle {
			keys = append(keys, k)
			sum += e.Bytes()
			got, ok := m.Get([]byte(k))
			if !ok || got.Tombstone != e.Tombstone || !bytes.Equal(got.Value, e.Value) {
				return false
			}
		}
		if m.Bytes() != sum {
			return false
		}
		sort.Strings(keys)
		all := m.All()
		for i, k := range keys {
			if string(all[i].Key) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
