// Package memtable implements the device-internal DRAM write buffer (the
// LSM-tree's L0): a skiplist ordered by key holding the most recent version
// of each buffered pair. Both KV-SSD designs buffer incoming writes here and
// flush the whole table into L1 when it reaches its size threshold
// (paper §4.2 "Write").
package memtable

import (
	"math/rand"

	"anykey/internal/kv"
)

const maxHeight = 12

// Entry is one buffered write: the newest version of a key, or a tombstone.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

// Bytes returns the DRAM footprint charged for the entry.
func (e *Entry) Bytes() int64 { return int64(len(e.Key) + len(e.Value)) }

type node struct {
	entry  Entry
	prefix uint64 // keyPrefix(entry.Key), cached for cheap skiplist compares
	next   [maxHeight]*node
}

// keyPrefix packs a key's first 8 bytes big-endian, zero-padded. For two
// keys, prefix inequality implies the same ordering as kv.Compare: the
// prefixes are the zero-extended first 8 bytes, and zero-padding can only
// make a shorter key compare equal-so-far — never larger — exactly like the
// length rule of lexicographic comparison. Equal prefixes decide nothing and
// fall back to the full compare.
func keyPrefix(key []byte) uint64 {
	var p uint64
	n := len(key)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		p |= uint64(key[i]) << (56 - 8*i)
	}
	return p
}

// Table is the skiplist write buffer. Not safe for concurrent use (the
// simulation is single-goroutine).
type Table struct {
	head   node
	height int
	rng    *rand.Rand
	count  int
	bytes  int64

	allBuf []Entry // reusable All() snapshot storage

	// Node arena: all nodes die together at Reset, so they come from
	// fixed-size chunks whose storage survives resets. Chunks never move
	// (each is its own allocation), keeping node pointers stable.
	chunks   [][]node
	nextNode int
}

// arenaChunk is the node count per arena chunk.
const arenaChunk = 256

func (t *Table) newNode() *node {
	ci, off := t.nextNode/arenaChunk, t.nextNode%arenaChunk
	if ci == len(t.chunks) {
		t.chunks = append(t.chunks, make([]node, arenaChunk))
	}
	t.nextNode++
	return &t.chunks[ci][off]
}

// New returns an empty table. The seed makes tower heights — and therefore
// iteration performance — deterministic across runs.
func New(seed int64) *Table {
	return &Table{height: 1, rng: rand.New(rand.NewSource(seed))}
}

// Len returns the number of distinct buffered keys.
func (t *Table) Len() int { return t.count }

// Bytes returns the total key+value bytes buffered, the size compared
// against the flush threshold.
func (t *Table) Bytes() int64 { return t.bytes }

// findPath fills prev with the rightmost node at each level whose key is
// strictly less than key, and returns the candidate node (≥ key) at level 0.
// Each step compares cached 8-byte prefixes first; the full key compare runs
// only on prefix ties.
func (t *Table) findPath(key []byte, prev *[maxHeight]*node) *node {
	p := keyPrefix(key)
	x := &t.head
	for lvl := t.height - 1; lvl >= 0; lvl-- {
		for nx := x.next[lvl]; nx != nil; nx = x.next[lvl] {
			if nx.prefix >= p && (nx.prefix > p || kv.Compare(nx.entry.Key, key) >= 0) {
				break
			}
			x = nx
		}
		if prev != nil {
			prev[lvl] = x
		}
	}
	return x.next[0]
}

// Put buffers a write, replacing any previous version of the key. It
// returns the replaced entry, if one existed — callers that account live
// bytes use it to avoid a second skiplist search.
func (t *Table) Put(key, value []byte) (Entry, bool) { return t.insert(key, value, false) }

// Delete buffers a tombstone for the key, returning the replaced entry.
func (t *Table) Delete(key []byte) (Entry, bool) { return t.insert(key, nil, true) }

func (t *Table) insert(key, value []byte, tomb bool) (Entry, bool) {
	var prev [maxHeight]*node
	if n := t.findPath(key, &prev); n != nil && kv.Compare(n.entry.Key, key) == 0 {
		old := n.entry
		t.bytes += int64(len(value)) - int64(len(old.Value))
		n.entry.Value = value
		n.entry.Tombstone = tomb
		return old, true
	}
	h := 1
	for h < maxHeight && t.rng.Intn(4) == 0 {
		h++
	}
	for lvl := t.height; lvl < h; lvl++ {
		prev[lvl] = &t.head
	}
	if h > t.height {
		t.height = h
	}
	n := t.newNode()
	*n = node{entry: Entry{Key: key, Value: value, Tombstone: tomb}, prefix: keyPrefix(key)}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = n
	}
	t.count++
	t.bytes += n.entry.Bytes()
	return Entry{}, false
}

// Get returns the buffered entry for key. The second result reports whether
// the key is present (a tombstone is present with Tombstone set).
func (t *Table) Get(key []byte) (Entry, bool) {
	n := t.findPath(key, nil)
	if n != nil && kv.Compare(n.entry.Key, key) == 0 {
		return n.entry, true
	}
	return Entry{}, false
}

// All returns every buffered entry in ascending key order. The slice is
// valid until the next All call: it reuses one table-owned buffer, sized for
// the drain-into-flush pattern where each snapshot is consumed before the
// table refills. (Entry Key/Value slices stay valid independently.)
func (t *Table) All() []Entry {
	out := t.allBuf[:0]
	if cap(out) < t.count {
		out = make([]Entry, 0, t.count)
	}
	for n := t.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.entry)
	}
	t.allBuf = out
	return out
}

// AscendFrom calls fn for each entry with key ≥ start, in order, until fn
// returns false.
func (t *Table) AscendFrom(start []byte, fn func(Entry) bool) {
	n := t.findPath(start, nil)
	for ; n != nil; n = n.next[0] {
		if !fn(n.entry) {
			return
		}
	}
}

// Iter is a pull-based iterator over entries in ascending key order. It
// walks the skiplist lazily — no snapshot copy — so it is only valid while
// the table is not mutated or Reset.
type Iter struct {
	n *node
}

// IterFrom returns an iterator positioned at the first entry with key ≥
// start.
func (t *Table) IterFrom(start []byte) Iter { return Iter{n: t.findPath(start, nil)} }

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.n != nil }

// Entry returns the current entry. The pointer is into the table; callers
// must not mutate it and must not retain it across table mutation.
func (it *Iter) Entry() *Entry { return &it.n.entry }

// Next advances to the next entry in key order.
func (it *Iter) Next() { it.n = it.n.next[0] }

// Reset empties the table, retaining its RNG state and node arena.
func (t *Table) Reset() {
	t.head = node{}
	t.height = 1
	t.count = 0
	t.bytes = 0
	t.nextNode = 0
}
