// Package memtable implements the device-internal DRAM write buffer (the
// LSM-tree's L0): a skiplist ordered by key holding the most recent version
// of each buffered pair. Both KV-SSD designs buffer incoming writes here and
// flush the whole table into L1 when it reaches its size threshold
// (paper §4.2 "Write").
package memtable

import (
	"math/rand"

	"anykey/internal/kv"
)

const maxHeight = 12

// Entry is one buffered write: the newest version of a key, or a tombstone.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

// Bytes returns the DRAM footprint charged for the entry.
func (e *Entry) Bytes() int64 { return int64(len(e.Key) + len(e.Value)) }

type node struct {
	entry Entry
	next  [maxHeight]*node
}

// Table is the skiplist write buffer. Not safe for concurrent use (the
// simulation is single-goroutine).
type Table struct {
	head   node
	height int
	rng    *rand.Rand
	count  int
	bytes  int64
}

// New returns an empty table. The seed makes tower heights — and therefore
// iteration performance — deterministic across runs.
func New(seed int64) *Table {
	return &Table{height: 1, rng: rand.New(rand.NewSource(seed))}
}

// Len returns the number of distinct buffered keys.
func (t *Table) Len() int { return t.count }

// Bytes returns the total key+value bytes buffered, the size compared
// against the flush threshold.
func (t *Table) Bytes() int64 { return t.bytes }

// findPath fills prev with the rightmost node at each level whose key is
// strictly less than key, and returns the candidate node (≥ key) at level 0.
func (t *Table) findPath(key []byte, prev *[maxHeight]*node) *node {
	x := &t.head
	for lvl := t.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && kv.Compare(x.next[lvl].entry.Key, key) < 0 {
			x = x.next[lvl]
		}
		if prev != nil {
			prev[lvl] = x
		}
	}
	return x.next[0]
}

// Put buffers a write, replacing any previous version of the key.
func (t *Table) Put(key, value []byte) { t.insert(key, value, false) }

// Delete buffers a tombstone for the key.
func (t *Table) Delete(key []byte) { t.insert(key, nil, true) }

func (t *Table) insert(key, value []byte, tomb bool) {
	var prev [maxHeight]*node
	if n := t.findPath(key, &prev); n != nil && kv.Compare(n.entry.Key, key) == 0 {
		t.bytes += int64(len(value)) - int64(len(n.entry.Value))
		n.entry.Value = value
		n.entry.Tombstone = tomb
		return
	}
	h := 1
	for h < maxHeight && t.rng.Intn(4) == 0 {
		h++
	}
	for lvl := t.height; lvl < h; lvl++ {
		prev[lvl] = &t.head
	}
	if h > t.height {
		t.height = h
	}
	n := &node{entry: Entry{Key: key, Value: value, Tombstone: tomb}}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = n
	}
	t.count++
	t.bytes += n.entry.Bytes()
}

// Get returns the buffered entry for key. The second result reports whether
// the key is present (a tombstone is present with Tombstone set).
func (t *Table) Get(key []byte) (Entry, bool) {
	n := t.findPath(key, nil)
	if n != nil && kv.Compare(n.entry.Key, key) == 0 {
		return n.entry, true
	}
	return Entry{}, false
}

// All returns every buffered entry in ascending key order.
func (t *Table) All() []Entry {
	out := make([]Entry, 0, t.count)
	for n := t.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.entry)
	}
	return out
}

// AscendFrom calls fn for each entry with key ≥ start, in order, until fn
// returns false.
func (t *Table) AscendFrom(start []byte, fn func(Entry) bool) {
	n := t.findPath(start, nil)
	for ; n != nil; n = n.next[0] {
		if !fn(n.entry) {
			return
		}
	}
}

// Reset empties the table, retaining its RNG state.
func (t *Table) Reset() {
	t.head = node{}
	t.height = 1
	t.count = 0
	t.bytes = 0
}
