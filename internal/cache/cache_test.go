package cache

import (
	"bytes"
	"fmt"
	"testing"

	"anykey/internal/device"
	"anykey/internal/kv"
	"anykey/internal/sim"
)

// stubDev is a map-backed KVSSD with a fixed per-op latency, counting calls.
type stubDev struct {
	m          map[string][]byte
	lat        sim.Duration
	gets, puts int
	dels       int
	syncs      int
}

func newStub() *stubDev {
	return &stubDev{m: make(map[string][]byte), lat: 100 * sim.Microsecond}
}

func (s *stubDev) Put(at sim.Time, key, value []byte) (sim.Time, error) {
	s.puts++
	s.m[string(key)] = append([]byte(nil), value...)
	return at.Add(s.lat), nil
}

func (s *stubDev) Delete(at sim.Time, key []byte) (sim.Time, error) {
	s.dels++
	delete(s.m, string(key))
	return at.Add(s.lat), nil
}

func (s *stubDev) Get(at sim.Time, key []byte) ([]byte, sim.Time, error) {
	s.gets++
	v, ok := s.m[string(key)]
	if !ok {
		return nil, at.Add(s.lat), kv.ErrNotFound
	}
	return v, at.Add(s.lat), nil
}

func (s *stubDev) Scan(at sim.Time, start []byte, n int) ([]kv.Pair, sim.Time, error) {
	return nil, at.Add(s.lat), nil
}

func (s *stubDev) Sync(at sim.Time) (sim.Time, error) {
	s.syncs++
	return at.Add(s.lat), nil
}

func (s *stubDev) Stats() *device.Stats             { return device.NewStats() }
func (s *stubDev) Metadata() []device.MetaStructure { return nil }

func TestAdmissionAfterSecondAccess(t *testing.T) {
	dev := newStub()
	c := Wrap(dev, Config{CapacityBytes: 1 << 20})
	key, val := []byte("k1"), []byte("value-one")
	if _, err := dev.Put(0, key, val); err != nil {
		t.Fatal(err)
	}

	// First access: miss, registers in the ghost filter, not admitted.
	if _, _, err := c.Get(0, key); err != nil {
		t.Fatal(err)
	}
	if st := c.CacheStats(); st.Hits != 0 || st.Misses != 1 || st.Admitted != 0 {
		t.Fatalf("after first access: %+v", st)
	}
	// Second access: miss, crosses the bar, admitted.
	if _, _, err := c.Get(0, key); err != nil {
		t.Fatal(err)
	}
	if st := c.CacheStats(); st.Misses != 2 || st.Admitted != 1 || st.Entries != 1 {
		t.Fatalf("after second access: %+v", st)
	}
	// Third access: DRAM hit, no device call, DRAM latency.
	devGets := dev.gets
	v, done, err := c.Get(1000, key)
	if err != nil || !bytes.Equal(v, val) {
		t.Fatalf("hit returned (%q, %v)", v, err)
	}
	if dev.gets != devGets {
		t.Fatal("hit reached the device")
	}
	if done != sim.Time(1000).Add(c.cfg.HitLatency) {
		t.Fatalf("hit latency = %v", done)
	}
	if st := c.CacheStats(); st.Hits != 1 {
		t.Fatalf("hit not counted: %+v", st)
	}
}

func TestGetHitPathDoesNotAllocate(t *testing.T) {
	dev := newStub()
	c := Wrap(dev, Config{CapacityBytes: 1 << 20, AdmitAfter: 1})
	key := []byte("hot-key")
	if _, err := dev.Put(0, key, []byte("hot-value")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(0, key); err != nil { // admit
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := c.Get(0, key); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("GET hit path allocates %v times per op", allocs)
	}
}

func TestWriteThroughRefreshesResidentCopy(t *testing.T) {
	dev := newStub()
	c := Wrap(dev, Config{CapacityBytes: 1 << 20, AdmitAfter: 1})
	key := []byte("k")
	if _, err := c.Put(0, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(0, key); err != nil { // admit v1
		t.Fatal(err)
	}
	// The overwrite goes to the device AND refreshes the cached copy; the
	// caller's buffer is copied, not aliased.
	buf := []byte("v2")
	if _, err := c.Put(0, key, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	v, _, err := c.Get(0, key)
	if err != nil || string(v) != "v2" {
		t.Fatalf("after overwrite Get = (%q, %v), want v2", v, err)
	}
	if dev.puts != 2 {
		t.Fatalf("device puts = %d, want 2 (write-through)", dev.puts)
	}
}

func TestDeleteInvalidatesResidentCopy(t *testing.T) {
	dev := newStub()
	c := Wrap(dev, Config{CapacityBytes: 1 << 20, AdmitAfter: 1})
	key := []byte("k")
	if _, err := c.Put(0, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(0, key); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(0, key); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(0, key); err != kv.ErrNotFound {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
}

func TestEvictionHonoursBudget(t *testing.T) {
	dev := newStub()
	c := Wrap(dev, Config{CapacityBytes: 400, AdmitAfter: 1})
	for i := 0; i < 10; i++ {
		key := []byte(fmt.Sprintf("key-%02d", i))
		if _, err := dev.Put(0, key, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(0, key); err != nil {
			t.Fatal(err)
		}
	}
	st := c.CacheStats()
	if st.Bytes > 400+200 { // one oversized resident entry is tolerated
		t.Fatalf("resident bytes %d far exceed budget", st.Bytes)
	}
	if st.Evicted == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
}

func TestWriteBackDefersAndFlushes(t *testing.T) {
	dev := newStub()
	c := Wrap(dev, Config{CapacityBytes: 1 << 20, WriteBack: true})
	key := []byte("k")
	done, err := c.Put(0, key, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if dev.puts != 0 {
		t.Fatal("write-back Put reached the device before Sync")
	}
	if done != sim.Time(0).Add(c.cfg.HitLatency) {
		t.Fatalf("write-back ack latency = %v", done)
	}
	// The unsynced write is visible through the cache.
	if v, _, err := c.Get(0, key); err != nil || string(v) != "v1" {
		t.Fatalf("Get before Sync = (%q, %v)", v, err)
	}
	if _, err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	if dev.puts != 1 || dev.syncs != 1 {
		t.Fatalf("after Sync: device puts=%d syncs=%d", dev.puts, dev.syncs)
	}
	if string(dev.m["k"]) != "v1" {
		t.Fatal("flushed value wrong")
	}
	// A second Sync flushes nothing new.
	if _, err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	if dev.puts != 1 {
		t.Fatal("clean entry re-flushed")
	}
}

func TestWriteBackDeleteFlushes(t *testing.T) {
	dev := newStub()
	c := Wrap(dev, Config{CapacityBytes: 1 << 20, WriteBack: true})
	key := []byte("k")
	if _, err := dev.Put(0, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(0, key); err != nil {
		t.Fatal(err)
	}
	if dev.dels != 0 {
		t.Fatal("write-back Delete reached the device before Sync")
	}
	if _, _, err := c.Get(0, key); err != kv.ErrNotFound {
		t.Fatalf("Get after buffered Delete = %v, want ErrNotFound", err)
	}
	if _, err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	if dev.dels != 1 {
		t.Fatal("buffered tombstone not flushed")
	}
	if _, ok := dev.m["k"]; ok {
		t.Fatal("device still holds the deleted key")
	}
}

func TestMetadataReportsCacheTier(t *testing.T) {
	c := Wrap(newStub(), Config{CapacityBytes: 1 << 20, AdmitAfter: 1})
	ms := c.Metadata()
	if len(ms) == 0 || ms[len(ms)-1].Name != "host-cache" || !ms[len(ms)-1].InDRAM {
		t.Fatalf("metadata missing host-cache tier: %+v", ms)
	}
}
