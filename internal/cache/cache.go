// Package cache implements a host-side DRAM read/write cache in front of a
// simulated KV-SSD, after Flashield's admission discipline (Eisenman et al.,
// NSDI'19; PAPERS.md): every object is served from DRAM first, and only
// objects that prove themselves — enough accesses while resident in the
// ghost filter — are admitted, so one-hit wonders never displace the working
// set. Here DRAM is the host's, flash is the device's, and "admission"
// gates entry into the byte-budgeted LRU.
//
// The cache wraps device.KVSSD transparently: hits complete in HitLatency of
// host time with no device call, misses pay the device's virtual-time cost.
// Writes are write-through by default (device latency unchanged, cached copy
// refreshed); optional write-back acknowledges at DRAM speed and flushes
// dirty entries on eviction and Sync. Like any host DRAM cache, contents —
// and, under write-back, unsynced writes — do not survive a power cycle;
// simulations that power-cut must either run write-through or Sync first,
// which is precisely the risk Flashield's authors accept for the same win.
package cache

import (
	"container/list"

	"anykey/internal/device"
	"anykey/internal/kv"
	"anykey/internal/sim"
)

// Config parameterises the cache.
type Config struct {
	// CapacityBytes is the DRAM budget for cached keys and values.
	CapacityBytes int64

	// AdmitAfter is the number of accesses (within ghost-filter memory) an
	// uncached key must accumulate before a miss admits it. 0 defaults to 2:
	// the first access registers, the second admits — Flashield's "shown
	// reuse" bar. 1 admits every miss (classic look-aside cache).
	AdmitAfter int

	// WriteBack acknowledges Puts at DRAM latency and defers the device
	// write to eviction or Sync. Default (false) is write-through.
	WriteBack bool

	// HitLatency is the host-time cost of a DRAM hit. 0 defaults to 2µs
	// (kernel/interconnect, not media).
	HitLatency sim.Duration

	// GhostSlots sizes the ghost filter (access counts for keys not in the
	// cache). 0 defaults to 1<<15 slots.
	GhostSlots int
}

func (c *Config) defaults() {
	if c.CapacityBytes == 0 {
		c.CapacityBytes = 64 << 20
	}
	if c.AdmitAfter == 0 {
		c.AdmitAfter = 2
	}
	if c.HitLatency == 0 {
		c.HitLatency = 2 * sim.Microsecond
	}
	if c.GhostSlots == 0 {
		c.GhostSlots = 1 << 15
	}
}

// Stats counts the cache's traffic.
type Stats struct {
	Hits     int64 // Gets served from DRAM
	Misses   int64 // Gets forwarded to the device
	Admitted int64 // entries that earned residence
	Evicted  int64 // entries displaced by the byte budget
	Bytes    int64 // current resident bytes
	Entries  int64 // current resident entries
}

// Add merges another snapshot into this one (cluster rollups).
func (s Stats) Add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Admitted += o.Admitted
	s.Evicted += o.Evicted
	s.Bytes += o.Bytes
	s.Entries += o.Entries
	return s
}

type entry struct {
	key   string
	value []byte
	dirty bool // write-back: newer than the device copy
	del   bool // write-back: pending tombstone
	elem  *list.Element
}

// Cache wraps an inner KVSSD with the admission-controlled DRAM tier. Like
// the devices it wraps, it is single-goroutine virtual-time.
type Cache struct {
	inner device.KVSSD
	cfg   Config

	entries map[string]*entry
	lru     *list.List // front = most recent; values are *entry
	bytes   int64

	// ghost is a direct-mapped table of access counts for keys seen but not
	// resident, indexed by key hash. Collisions merge counts — a small
	// admission error, exactly as a real sketch filter trades.
	ghost []uint8

	st Stats
}

// Wrap builds a cache in front of inner.
func Wrap(inner device.KVSSD, cfg Config) *Cache {
	cfg.defaults()
	return &Cache{
		inner:   inner,
		cfg:     cfg,
		entries: make(map[string]*entry),
		lru:     list.New(),
		ghost:   make([]uint8, cfg.GhostSlots),
	}
}

var _ device.KVSSD = (*Cache)(nil)

// Inner returns the wrapped device (for harness access to arrays, tracers
// and power cycling — the cache itself has no durable state).
func (c *Cache) Inner() device.KVSSD { return c.inner }

// CacheStats returns a snapshot of the cache's counters.
func (c *Cache) CacheStats() Stats {
	st := c.st
	st.Bytes = c.bytes
	st.Entries = int64(c.lru.Len())
	return st
}

// fnv1a matches the ghost filter's only need: a cheap, allocation-free
// spread of key bytes over the slot space.
func fnv1a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (c *Cache) ghostSlot(key []byte) *uint8 {
	return &c.ghost[fnv1a(key)%uint64(len(c.ghost))]
}

func entryBytes(e *entry) int64 { return int64(len(e.key) + len(e.value) + 64) }

// touch moves e to the LRU front.
func (c *Cache) touch(e *entry) { c.lru.MoveToFront(e.elem) }

// insert installs a key-value pair as resident, evicting to budget.
func (c *Cache) insert(at sim.Time, key, value []byte, dirty, del bool) (sim.Time, error) {
	e := &entry{key: string(key), value: value, dirty: dirty, del: del}
	e.elem = c.lru.PushFront(e)
	c.entries[e.key] = e
	c.bytes += entryBytes(e)
	return c.evictToBudget(at)
}

// evictToBudget displaces LRU-tail entries until the budget holds, flushing
// dirty ones to the device. Eviction order is the deterministic LRU order,
// so write-back device traffic is reproducible run to run.
func (c *Cache) evictToBudget(at sim.Time) (sim.Time, error) {
	now := at
	for c.bytes > c.cfg.CapacityBytes && c.lru.Len() > 1 {
		tail := c.lru.Back()
		e := tail.Value.(*entry)
		t, err := c.flush(now, e)
		if err != nil {
			return t, err
		}
		now = t
		c.remove(e)
		c.st.Evicted++
	}
	return now, nil
}

// flush writes a dirty entry's pending state to the device.
func (c *Cache) flush(at sim.Time, e *entry) (sim.Time, error) {
	switch {
	case e.del:
		t, err := c.inner.Delete(at, []byte(e.key))
		if err != nil {
			return t, err
		}
		e.del, e.dirty = false, false
		return t, nil
	case e.dirty:
		t, err := c.inner.Put(at, []byte(e.key), e.value)
		if err != nil {
			return t, err
		}
		e.dirty = false
		return t, nil
	}
	return at, nil
}

func (c *Cache) remove(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= entryBytes(e)
}

// Put implements device.KVSSD. Like the devices, the cache copies the
// caller's buffers — harness drivers reuse them across requests.
func (c *Cache) Put(at sim.Time, key, value []byte) (sim.Time, error) {
	if c.cfg.WriteBack {
		if e, ok := c.entries[string(key)]; ok {
			c.bytes += int64(len(value) - len(e.value))
			e.value = append([]byte(nil), value...)
			e.dirty, e.del = true, false
			c.touch(e)
			return c.evictToBudget(at.Add(c.cfg.HitLatency))
		}
		done := at.Add(c.cfg.HitLatency)
		t, err := c.insert(at, key, append([]byte(nil), value...), true, false)
		return sim.Max(done, t), err
	}
	// Write-through: the device write is the acknowledgement; a resident
	// copy is refreshed, but a write alone does not earn admission.
	done, err := c.inner.Put(at, key, value)
	if err != nil {
		return done, err
	}
	if e, ok := c.entries[string(key)]; ok {
		c.bytes += int64(len(value) - len(e.value))
		e.value = append([]byte(nil), value...)
		c.touch(e)
		if t, err := c.evictToBudget(done); err != nil {
			return t, err
		}
	}
	return done, nil
}

// Delete implements device.KVSSD.
func (c *Cache) Delete(at sim.Time, key []byte) (sim.Time, error) {
	if c.cfg.WriteBack {
		if e, ok := c.entries[string(key)]; ok {
			c.bytes -= int64(len(e.value))
			e.value = nil
			e.dirty, e.del = false, true
			c.touch(e)
			return at.Add(c.cfg.HitLatency), nil
		}
		return c.insert(at, key, nil, false, true)
	}
	done, err := c.inner.Delete(at, key)
	if err != nil {
		return done, err
	}
	if e, ok := c.entries[string(key)]; ok {
		c.remove(e)
	}
	return done, nil
}

// Get implements device.KVSSD. Hits are served from DRAM in HitLatency with
// no device call and no allocation; misses pay the device read and may admit
// the value under the Flashield bar.
func (c *Cache) Get(at sim.Time, key []byte) ([]byte, sim.Time, error) {
	if e, ok := c.entries[string(key)]; ok {
		c.st.Hits++
		c.touch(e)
		if e.del {
			return nil, at.Add(c.cfg.HitLatency), kv.ErrNotFound
		}
		return e.value, at.Add(c.cfg.HitLatency), nil
	}
	c.st.Misses++
	v, done, err := c.inner.Get(at, key)
	if err != nil {
		return v, done, err
	}
	slot := c.ghostSlot(key)
	if *slot < 0xFF {
		*slot++
	}
	if int(*slot) >= c.cfg.AdmitAfter {
		*slot = 0
		c.st.Admitted++
		if t, err := c.insert(done, key, v, false, false); err != nil {
			return v, t, err
		}
	}
	return v, done, nil
}

// Scan implements device.KVSSD. Range queries bypass the cache; under
// write-back, dirty entries flush first so the device sees every
// acknowledged write (deterministic LRU order).
func (c *Cache) Scan(at sim.Time, start []byte, n int) ([]kv.Pair, sim.Time, error) {
	now, err := c.flushDirty(at)
	if err != nil {
		return nil, now, err
	}
	return c.inner.Scan(now, start, n)
}

// Sync implements device.KVSSD: dirty entries flush, then the device syncs.
func (c *Cache) Sync(at sim.Time) (sim.Time, error) {
	now, err := c.flushDirty(at)
	if err != nil {
		return now, err
	}
	return c.inner.Sync(now)
}

// flushDirty writes every dirty entry through, in LRU order (most recent
// first) for determinism. Entries stay resident and clean.
func (c *Cache) flushDirty(at sim.Time) (sim.Time, error) {
	if !c.cfg.WriteBack {
		return at, nil
	}
	now := at
	for el := c.lru.Front(); el != nil; {
		e := el.Value.(*entry)
		next := el.Next()
		if e.dirty || e.del {
			t, err := c.flush(now, e)
			if err != nil {
				return t, err
			}
			now = t
			if e.value == nil {
				c.remove(e) // flushed tombstone: nothing left to cache
			}
		}
		el = next
	}
	return now, nil
}

// Stats implements device.KVSSD, passing the device's statistics through.
func (c *Cache) Stats() *device.Stats { return c.inner.Stats() }

// Metadata implements device.KVSSD: the device's structures plus the cache's
// own DRAM tier (host DRAM, reported in-DRAM).
func (c *Cache) Metadata() []device.MetaStructure {
	ms := c.inner.Metadata()
	return append(ms, device.MetaStructure{Name: "host-cache", Bytes: c.bytes, InDRAM: true})
}
