// Package ftl provides the flash-translation-layer substrate shared by both
// KV-SSD designs: a free-block pool, append-only allocation streams (one
// active block per stream, so pages written together land together — the
// property AnyKey's group-granular GC relies on, paper §4.4 "GC"), page
// validity accounting, and greedy victim selection for garbage collection.
package ftl

import (
	"fmt"

	"anykey/internal/nand"
	"anykey/internal/sim"
)

// Region tags the purpose a block is allocated for, so GC policies can be
// applied per region (data segment groups vs value log vs meta segments).
type Region int8

// Regions used by the designs in this repository.
const (
	RegionNone Region = iota // free / never allocated
	RegionData               // data segments / data segment groups
	RegionMeta               // PinK meta segments
	RegionLog                // AnyKey value log
	// RegionBad parks blocks retired as grown-bad with no live contents
	// left: they cannot be erased, so they never return to the free list
	// and no victim selection considers them. A grown-bad block that still
	// holds live data keeps its original region (reads work fine) until GC
	// relocates the data out and Release retires it here.
	RegionBad
)

var regionNames = [...]string{"none", "data", "meta", "log", "bad"}

// String returns the region's lowercase name.
func (r Region) String() string {
	if r < 0 || int(r) >= len(regionNames) {
		return fmt.Sprintf("region(%d)", int(r))
	}
	return regionNames[r]
}

// Pool manages the erase blocks of one flash array: which are free, which
// region owns each, and how many valid pages each holds.
type Pool struct {
	arr   *nand.Array
	geo   nand.Geometry
	free  []nand.BlockID
	owner []Region
	// valid page accounting; a page is "valid" while its owner still needs
	// its contents. Owners flip validity as they overwrite or migrate data.
	validBits  []uint64
	validCount []int32
	active     map[nand.BlockID]bool // stream-open blocks, exempt from GC
	wear       []int32               // erase count per block
}

// NewPool builds a pool over arr with every block free.
func NewPool(arr *nand.Array) *Pool {
	geo := arr.Geometry()
	p := &Pool{
		arr:        arr,
		geo:        geo,
		owner:      make([]Region, geo.Blocks()),
		validBits:  make([]uint64, (geo.Pages()+63)/64),
		validCount: make([]int32, geo.Blocks()),
		active:     make(map[nand.BlockID]bool),
		wear:       make([]int32, geo.Blocks()),
	}
	p.free = make([]nand.BlockID, 0, geo.Blocks())
	for i := 0; i < geo.Blocks(); i++ {
		b := nand.BlockID(i)
		// Blocks already grown-bad (a Reopen over an array that failed
		// programs/erases in a previous life) are parked, never freed.
		// Recovery may still find live data in them and re-own them via
		// AdoptBad.
		if arr.Bad(b) {
			p.owner[b] = RegionBad
			continue
		}
		p.free = append(p.free, b)
	}
	return p
}

// FreeBlocks returns the number of unallocated blocks.
func (p *Pool) FreeBlocks() int { return len(p.free) }

// TotalBlocks returns the pool's block count.
func (p *Pool) TotalBlocks() int { return p.geo.Blocks() }

// BlocksIn returns how many blocks are currently owned by region r.
func (p *Pool) BlocksIn(r Region) int {
	n := 0
	for _, o := range p.owner {
		if o == r {
			n++
		}
	}
	return n
}

// Owner returns the region owning block b.
func (p *Pool) Owner(b nand.BlockID) Region { return p.owner[b] }

// Alloc takes a free block for region r, preferring the least-worn free
// block (static wear levelling). It reports false when the pool is
// exhausted; callers must then garbage-collect before retrying.
func (p *Pool) Alloc(r Region) (nand.BlockID, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.wear[p.free[i]] < p.wear[p.free[best]] {
			best = i
		}
	}
	b := p.free[best]
	p.free[best] = p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.owner[b] = r
	return b, true
}

// Release erases block b on the array at time at and returns it to the free
// list. Any still-valid pages are an owner bug and panic. When the erase
// fails (or the block was already grown-bad), the block is retired to
// RegionBad instead of being freed — from the owner's point of view Release
// still "worked": the block's contents were dead and it will never be
// allocated again.
func (p *Pool) Release(at sim.Time, b nand.BlockID, cause nand.Cause) sim.Time {
	if p.owner[b] == RegionNone {
		panic(fmt.Sprintf("ftl: release of free block %d", b))
	}
	if p.validCount[b] != 0 {
		panic(fmt.Sprintf("ftl: release of block %d with %d valid pages", b, p.validCount[b]))
	}
	done, err := p.arr.Erase(at, b, cause)
	// Clear any stale valid bits (all should be clear already).
	first := int(b) * p.geo.PagesPerBlock
	for i := 0; i < p.geo.PagesPerBlock; i++ {
		p.clearBit(nand.PPA(first + i))
	}
	p.active[b] = false
	if err != nil {
		p.owner[b] = RegionBad
		return done
	}
	p.wear[b]++
	p.owner[b] = RegionNone
	p.free = append(p.free, b)
	return done
}

// MarkValid records that the contents of ppa are live.
func (p *Pool) MarkValid(ppa nand.PPA) {
	if p.bit(ppa) {
		return
	}
	p.setBit(ppa)
	p.validCount[p.arr.BlockOf(ppa)]++
}

// MarkInvalid records that the contents of ppa are dead. Idempotent.
func (p *Pool) MarkInvalid(ppa nand.PPA) {
	if !p.bit(ppa) {
		return
	}
	p.clearBit(ppa)
	p.validCount[p.arr.BlockOf(ppa)]--
}

// Valid reports whether ppa is marked live.
func (p *Pool) Valid(ppa nand.PPA) bool { return p.bit(ppa) }

// ValidPages returns the number of live pages in block b.
func (p *Pool) ValidPages(b nand.BlockID) int { return int(p.validCount[b]) }

// Victim returns the non-stream-active block of region r with the fewest
// valid pages, preferring fully-invalid blocks (which can be erased with no
// relocation at all — the common case for AnyKey, §4.4). It reports false
// when region r has no eligible block.
func (p *Pool) Victim(r Region) (nand.BlockID, bool) {
	best := nand.BlockID(-1)
	bestValid := int32(1 << 30)
	for i := range p.owner {
		b := nand.BlockID(i)
		if p.owner[i] != r || p.active[b] {
			continue
		}
		if p.validCount[b] < bestValid {
			bestValid = p.validCount[b]
			best = b
			if bestValid == 0 {
				break
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// VictimBelow is like Victim but only returns blocks whose valid-page count
// is at most maxValid, letting callers skip GC that would mostly relocate.
func (p *Pool) VictimBelow(r Region, maxValid int) (nand.BlockID, bool) {
	b, ok := p.Victim(r)
	if !ok || p.ValidPages(b) > maxValid {
		return 0, false
	}
	return b, true
}

func (p *Pool) bit(ppa nand.PPA) bool {
	return p.validBits[ppa/64]&(1<<(uint(ppa)%64)) != 0
}
func (p *Pool) setBit(ppa nand.PPA)   { p.validBits[ppa/64] |= 1 << (uint(ppa) % 64) }
func (p *Pool) clearBit(ppa nand.PPA) { p.validBits[ppa/64] &^= 1 << (uint(ppa) % 64) }

// Stream is an append-only page allocator bound to one region: it fills one
// block at a time so that pages appended consecutively share blocks.
type Stream struct {
	pool   *Pool
	region Region
	cur    nand.BlockID
	open   bool
}

// NewStream returns a stream allocating from pool into region r.
func NewStream(pool *Pool, r Region) *Stream {
	return &Stream{pool: pool, region: r}
}

// NextPage returns the PPA the caller should program next. It reports false
// when the pool has no free block to continue into; the caller must GC and
// retry. The returned page is not yet marked valid — callers mark it after
// programming.
func (s *Stream) NextPage() (nand.PPA, bool) {
	if s.open && s.pool.arr.FreePagesIn(s.cur) > 0 {
		idx := s.pool.geo.PagesPerBlock - s.pool.arr.FreePagesIn(s.cur)
		return s.pool.arr.PageOf(s.cur, idx), true
	}
	if s.open {
		s.pool.active[s.cur] = false
		s.open = false
	}
	b, ok := s.pool.Alloc(s.region)
	if !ok {
		return 0, false
	}
	s.cur = b
	s.open = true
	s.pool.active[b] = true
	return s.pool.arr.PageOf(b, 0), true
}

// CurrentBlock returns the block being filled; ok is false when no block is
// open yet.
func (s *Stream) CurrentBlock() (nand.BlockID, bool) { return s.cur, s.open }

// Close releases the stream's claim on its current block so GC may consider
// it. Remaining pages in the block stay unwritten until the block is erased.
func (s *Stream) Close() {
	if s.open {
		s.pool.active[s.cur] = false
		s.open = false
	}
}

// RunStream allocates runs of physically consecutive pages that never cross
// an erase-block boundary — the allocation pattern of AnyKey's data segment
// groups, which combine neighbouring pages of one block (paper §4.1). When a
// block's remainder cannot hold the requested run, the remainder is
// abandoned (those pages stay unwritten until the block is erased) and a
// fresh block is opened.
type RunStream struct {
	pool   *Pool
	region Region
	cur    nand.BlockID
	next   int
	open   bool
}

// NewRunStream returns a run allocator for region r.
func NewRunStream(pool *Pool, r Region) *RunStream {
	return &RunStream{pool: pool, region: r}
}

// NextRun returns the first PPA of n consecutive pages within one block. It
// reports false when no block can satisfy the request; n must not exceed
// the block size.
func (s *RunStream) NextRun(n int) (nand.PPA, bool) {
	if n <= 0 || n > s.pool.geo.PagesPerBlock {
		panic(fmt.Sprintf("ftl: run of %d pages impossible with %d-page blocks", n, s.pool.geo.PagesPerBlock))
	}
	if s.open && s.pool.geo.PagesPerBlock-s.next >= n {
		ppa := s.pool.arr.PageOf(s.cur, s.next)
		s.next += n
		return ppa, true
	}
	if s.open {
		s.pool.active[s.cur] = false
		s.open = false
	}
	b, ok := s.pool.Alloc(s.region)
	if !ok {
		return 0, false
	}
	s.cur = b
	s.open = true
	s.next = n
	s.pool.active[b] = true
	return s.pool.arr.PageOf(b, 0), true
}

// Close releases the stream's claim on its current block.
func (s *RunStream) Close() {
	if s.open {
		s.pool.active[s.cur] = false
		s.open = false
	}
}

// SetActive marks or unmarks a block as in-use by an allocator that manages
// its pages directly (e.g. AnyKey's value log), exempting it from victim
// selection while set.
func (p *Pool) SetActive(b nand.BlockID, on bool) { p.active[b] = on }

// Active reports whether b is currently exempt from victim selection.
func (p *Pool) Active(b nand.BlockID) bool { return p.active[b] }

// Adopt claims a specific free block for region r during recovery, when the
// owner is derived from on-flash contents rather than allocation order. A
// grown-bad block may be adopted too — a block retired by a program failure
// can still hold live pages written before the failure; it is re-owned so
// reads and validity accounting work, stays off the free list, and returns
// to RegionBad when its contents die and Release retires it again.
func (p *Pool) Adopt(b nand.BlockID, r Region) {
	if p.owner[b] == RegionBad && p.arr.Bad(b) {
		p.owner[b] = r
		return
	}
	if p.owner[b] != RegionNone {
		panic(fmt.Sprintf("ftl: adopt of owned block %d", b))
	}
	for i, fb := range p.free {
		if fb == b {
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			p.owner[b] = r
			return
		}
	}
	panic(fmt.Sprintf("ftl: adopt of missing block %d", b))
}

// --- wear accounting and levelling ------------------------------------------

// Wear returns the erase count of block b. Flash blocks endure a bounded
// number of program/erase cycles; the paper's device-lifetime argument
// (Fig. 13) is exactly about how many of these the FTL burns.
func (p *Pool) Wear(b nand.BlockID) int { return int(p.wear[b]) }

// WearStats summarises the pool's erase-count distribution.
type WearStats struct {
	Min, Max int
	Total    int64
	Mean     float64
	Spread   int // Max - Min, the wear-levelling quality metric
	ByRegion map[Region]int64
}

// WearStats computes the current distribution.
func (p *Pool) WearStats() WearStats {
	st := WearStats{Min: 1 << 30, ByRegion: make(map[Region]int64)}
	for b, w := range p.wear {
		wi := int(w)
		if wi < st.Min {
			st.Min = wi
		}
		if wi > st.Max {
			st.Max = wi
		}
		st.Total += int64(wi)
		st.ByRegion[p.owner[b]] += int64(wi)
	}
	if len(p.wear) > 0 {
		st.Mean = float64(st.Total) / float64(len(p.wear))
	}
	if st.Min == 1<<30 {
		st.Min = 0
	}
	st.Spread = st.Max - st.Min
	return st
}
