package ftl

import (
	"testing"

	"anykey/internal/nand"
	"anykey/internal/sim"
)

func testPool(t *testing.T) (*Pool, *nand.Array) {
	t.Helper()
	geo := nand.Geometry{Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 3, PagesPerBlock: 4, PageSize: 32}
	arr, err := nand.New(geo, nand.TLCTiming())
	if err != nil {
		t.Fatal(err)
	}
	return NewPool(arr), arr
}

func pg(arr *nand.Array) []byte { return make([]byte, arr.Geometry().PageSize) }

func TestAllocExhaustion(t *testing.T) {
	p, _ := testPool(t)
	total := p.TotalBlocks()
	for i := 0; i < total; i++ {
		if _, ok := p.Alloc(RegionData); !ok {
			t.Fatalf("alloc %d/%d failed", i, total)
		}
	}
	if _, ok := p.Alloc(RegionData); ok {
		t.Fatal("alloc succeeded on empty pool")
	}
	if p.FreeBlocks() != 0 || p.BlocksIn(RegionData) != total {
		t.Fatalf("free=%d data=%d", p.FreeBlocks(), p.BlocksIn(RegionData))
	}
}

func TestStreamFillsBlocksSequentially(t *testing.T) {
	p, arr := testPool(t)
	s := NewStream(p, RegionData)
	var at sim.Time
	seen := map[nand.BlockID]int{}
	for i := 0; i < 9; i++ { // 2 full blocks + 1 page
		ppa, ok := s.NextPage()
		if !ok {
			t.Fatal("stream exhausted unexpectedly")
		}
		at, _ = arr.Program(at, ppa, pg(arr), nand.CauseFlush)
		p.MarkValid(ppa)
		seen[arr.BlockOf(ppa)]++
	}
	if len(seen) != 3 {
		t.Fatalf("9 pages spread over %d blocks, want 3", len(seen))
	}
	if b, open := s.CurrentBlock(); !open || p.ValidPages(b) != 1 {
		t.Fatal("current block state wrong")
	}
}

func TestStreamActiveBlocksExemptFromGC(t *testing.T) {
	p, arr := testPool(t)
	s := NewStream(p, RegionData)
	ppa, _ := s.NextPage()
	arr.Program(0, ppa, pg(arr), nand.CauseFlush)
	// Block has 0 valid pages but is stream-active: not a victim.
	if _, ok := p.Victim(RegionData); ok {
		t.Fatal("stream-active block selected as victim")
	}
	s.Close()
	if b, ok := p.Victim(RegionData); !ok || b != arr.BlockOf(ppa) {
		t.Fatal("closed block not selected as victim")
	}
}

func TestVictimPrefersFewestValid(t *testing.T) {
	p, arr := testPool(t)
	s := NewStream(p, RegionData)
	var at sim.Time
	var ppas []nand.PPA
	for i := 0; i < 8; i++ { // fill 2 blocks
		ppa, _ := s.NextPage()
		at, _ = arr.Program(at, ppa, pg(arr), nand.CauseFlush)
		p.MarkValid(ppa)
		ppas = append(ppas, ppa)
	}
	s.Close()
	// Invalidate 3 of 4 pages in the second block, 1 of 4 in the first.
	p.MarkInvalid(ppas[0])
	for _, ppa := range ppas[4:7] {
		p.MarkInvalid(ppa)
	}
	v, ok := p.Victim(RegionData)
	if !ok || v != arr.BlockOf(ppas[4]) {
		t.Fatalf("victim = %v/%v, want block of ppas[4]", v, ok)
	}
	if _, ok := p.VictimBelow(RegionData, 0); ok {
		t.Fatal("VictimBelow(0) found a block with valid pages")
	}
	if _, ok := p.VictimBelow(RegionData, 1); !ok {
		t.Fatal("VictimBelow(1) missed the 1-valid block")
	}
}

func TestMarkValidIdempotent(t *testing.T) {
	p, arr := testPool(t)
	s := NewStream(p, RegionData)
	ppa, _ := s.NextPage()
	arr.Program(0, ppa, pg(arr), nand.CauseFlush)
	p.MarkValid(ppa)
	p.MarkValid(ppa)
	if p.ValidPages(arr.BlockOf(ppa)) != 1 {
		t.Fatal("double MarkValid double-counted")
	}
	p.MarkInvalid(ppa)
	p.MarkInvalid(ppa)
	if p.ValidPages(arr.BlockOf(ppa)) != 0 {
		t.Fatal("double MarkInvalid double-counted")
	}
	if p.Valid(ppa) {
		t.Fatal("page still valid")
	}
}

func TestReleaseRecyclesBlock(t *testing.T) {
	p, arr := testPool(t)
	s := NewStream(p, RegionData)
	ppa, _ := s.NextPage()
	at, _ := arr.Program(0, ppa, pg(arr), nand.CauseFlush)
	p.MarkValid(ppa)
	s.Close()
	b := arr.BlockOf(ppa)
	p.MarkInvalid(ppa)
	free := p.FreeBlocks()
	p.Release(at, b, nand.CauseGC)
	if p.FreeBlocks() != free+1 || p.Owner(b) != RegionNone {
		t.Fatal("release did not recycle block")
	}
	// Block must be programmable from page 0 again.
	b2, ok := p.Alloc(RegionLog)
	for ok && b2 != b {
		b2, ok = p.Alloc(RegionLog)
	}
	if !ok {
		t.Fatal("released block not allocatable")
	}
	arr.Program(at, arr.PageOf(b, 0), pg(arr), nand.CauseLog)
}

func TestReleaseWithValidPagesPanics(t *testing.T) {
	p, arr := testPool(t)
	s := NewStream(p, RegionData)
	ppa, _ := s.NextPage()
	arr.Program(0, ppa, pg(arr), nand.CauseFlush)
	p.MarkValid(ppa)
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Release(0, arr.BlockOf(ppa), nand.CauseGC)
}

func TestVictimScopedByRegion(t *testing.T) {
	p, arr := testPool(t)
	ds := NewStream(p, RegionData)
	ls := NewStream(p, RegionLog)
	dp, _ := ds.NextPage()
	lp, _ := ls.NextPage()
	arr.Program(0, dp, pg(arr), nand.CauseFlush)
	arr.Program(0, lp, pg(arr), nand.CauseLog)
	ds.Close()
	ls.Close()
	v, ok := p.Victim(RegionLog)
	if !ok || p.Owner(v) != RegionLog {
		t.Fatalf("log victim = %v owner %v", v, p.Owner(v))
	}
}

func TestRegionString(t *testing.T) {
	if RegionLog.String() != "log" || RegionData.String() != "data" || Region(9).String() == "" {
		t.Fatal("region names wrong")
	}
}

func TestRunStreamContiguityWithinBlock(t *testing.T) {
	p, arr := testPool(t)
	s := NewRunStream(p, RegionData)
	ppb := arr.Geometry().PagesPerBlock // 4
	// Two runs of 2 pages fill one block; third run opens a new block.
	r1, ok := s.NextRun(2)
	if !ok {
		t.Fatal("run 1 failed")
	}
	r2, ok := s.NextRun(2)
	if !ok {
		t.Fatal("run 2 failed")
	}
	if arr.BlockOf(r1) != arr.BlockOf(r2) || int(r2-r1) != 2 {
		t.Fatalf("runs not consecutive in one block: %d %d", r1, r2)
	}
	r3, ok := s.NextRun(3)
	if !ok {
		t.Fatal("run 3 failed")
	}
	if arr.BlockOf(r3) == arr.BlockOf(r1) {
		t.Fatal("3-page run crammed into full block")
	}
	if arr.PageInBlock(r3) != 0 {
		t.Fatal("new block run does not start at page 0")
	}
	_ = ppb
}

func TestRunStreamAbandonsShortRemainder(t *testing.T) {
	p, arr := testPool(t)
	s := NewRunStream(p, RegionData)
	r1, _ := s.NextRun(3) // leaves 1 page in the 4-page block
	r2, _ := s.NextRun(2) // cannot fit: new block
	if arr.BlockOf(r1) == arr.BlockOf(r2) {
		t.Fatal("run crossed into abandoned remainder")
	}
	// The abandoned block is GC-eligible once closed (it was auto-closed by
	// the new allocation).
	if _, ok := p.Victim(RegionData); !ok {
		t.Fatal("abandoned block not visible to GC")
	}
}

func TestRunStreamRejectsImpossibleRun(t *testing.T) {
	p, arr := testPool(t)
	s := NewRunStream(p, RegionData)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.NextRun(arr.Geometry().PagesPerBlock + 1)
}

func TestRunStreamExhaustion(t *testing.T) {
	p, arr := testPool(t)
	s := NewRunStream(p, RegionData)
	n := 0
	for {
		if _, ok := s.NextRun(arr.Geometry().PagesPerBlock); !ok {
			break
		}
		n++
	}
	if n != p.TotalBlocks() {
		t.Fatalf("allocated %d full-block runs, want %d", n, p.TotalBlocks())
	}
}

func TestWearTrackingAndLevelling(t *testing.T) {
	p, arr := testPool(t)
	// Churn one block repeatedly through alloc/release.
	for i := 0; i < 5; i++ {
		b, ok := p.Alloc(RegionData)
		if !ok {
			t.Fatal("alloc failed")
		}
		arr.Program(0, arr.PageOf(b, 0), pg(arr), nand.CauseFlush)
		p.Release(0, b, nand.CauseGC)
	}
	st := p.WearStats()
	if st.Total != 5 {
		t.Fatalf("total wear = %d, want 5", st.Total)
	}
	// Wear-aware allocation spreads erases: after churning, the max wear
	// must stay low because Alloc prefers least-worn blocks.
	if st.Max > 1 {
		t.Fatalf("wear concentrated: max=%d (levelling failed)", st.Max)
	}
	if st.Spread != st.Max-st.Min {
		t.Fatal("spread inconsistent")
	}
}

func TestWearStatsEmpty(t *testing.T) {
	p, _ := testPool(t)
	st := p.WearStats()
	if st.Total != 0 || st.Min != 0 || st.Max != 0 || st.Mean != 0 {
		t.Fatalf("fresh pool wear: %+v", st)
	}
}
