// Package host models the host side of the KV-SSD command path: an
// NVMe-style submission/completion engine that drives a device.KVSSD at a
// configurable queue depth. The paper's whole evaluation (§5) runs at queue
// depth 64; the engine makes that concurrency a first-class subsystem
// instead of a benchmark-script detail.
//
// The engine owns one virtual clock per submission slot. A request is
// carried by the slot that frees earliest (ties to the lowest slot, so runs
// are deterministic), and the engine — not its callers — enforces the
// device contract that operations are issued at non-decreasing times. At
// queue depth 1 the engine degenerates to the classic closed loop: each
// request is issued the instant the previous one completes.
//
// Two submission styles are supported:
//
//   - Closed loop (Put, Get, Delete, Scan): the request is generated the
//     moment a slot frees, so it never queues. This is the paper's
//     methodology — N closed-loop workers — and the harness's mode.
//   - Open loop (PutAt, GetAt, DeleteAt, ScanAt): the request arrives at an
//     explicit time from a rate generator; if every slot is busy past the
//     arrival it queues, and the completion records how long.
//
// Every completion carries the arrival/issue/done instants, so the
// per-operation latency splits into queue wait (arrival→issue) and device
// service (issue→done); the engine aggregates both into stats histograms.
package host

import (
	"errors"
	"fmt"

	"anykey/internal/device"
	"anykey/internal/kv"
	"anykey/internal/sim"
	"anykey/internal/stats"
	"anykey/internal/trace"
)

// Completion is the host-visible outcome of one request: when it arrived,
// when a slot issued it to the device, when the device finished, and any
// returned data.
type Completion struct {
	// Slot is the submission slot that carried the request.
	Slot int
	// Arrival is when the host generated the request. Closed-loop requests
	// arrive exactly when their slot frees, so Arrival == Issued.
	Arrival sim.Time
	// Issued is when the request entered the device.
	Issued sim.Time
	// Done is when the device completed it.
	Done sim.Time

	// Value is the payload of a Get; Pairs the results of a Scan.
	Value []byte
	Pairs []kv.Pair
}

// Latency is the end-to-end request latency (arrival to completion).
func (c Completion) Latency() sim.Duration { return c.Done.Sub(c.Arrival) }

// QueueWait is the time spent waiting for a free submission slot.
func (c Completion) QueueWait() sim.Duration { return c.Issued.Sub(c.Arrival) }

// Service is the time the device spent on the request.
func (c Completion) Service() sim.Duration { return c.Done.Sub(c.Issued) }

// Engine drives one device at a fixed queue depth.
type Engine struct {
	dev       device.KVSSD
	clocks    *sim.ClockSet
	lastIssue sim.Time
	ops       int64
	tr        *trace.Tracer

	queueWait stats.Histogram
	service   stats.Histogram
}

// New returns an engine of the given queue depth whose clocks start at the
// simulation epoch.
func New(dev device.KVSSD, depth int) (*Engine, error) {
	return NewAt(dev, depth, 0)
}

// NewAt starts the engine's clocks at an explicit time — used when an
// engine takes over a device whose clock has already advanced (e.g. after
// a power cycle).
func NewAt(dev device.KVSSD, depth int, start sim.Time) (*Engine, error) {
	if dev == nil {
		return nil, errors.New("host: nil device")
	}
	if depth < 1 {
		return nil, fmt.Errorf("host: queue depth %d; need at least 1", depth)
	}
	return &Engine{dev: dev, clocks: sim.NewClockSet(depth, start), lastIssue: start}, nil
}

// SetTracer attaches an event tracer recording op lifecycles (nil
// detaches). The same tracer should be attached to the device underneath so
// its flash events link to the ops recorded here.
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tr = tr }

// Depth returns the engine's queue depth.
func (e *Engine) Depth() int { return e.clocks.Len() }

// Now returns the latest completion time across all slots.
func (e *Engine) Now() sim.Time { return e.clocks.Max() }

// Ops returns the number of requests completed since creation.
func (e *Engine) Ops() int64 { return e.ops }

// Barrier waits for every in-flight request and aligns all slot clocks to
// the latest completion, which it returns. Experiments place one between
// their warm-up and measurement phases.
func (e *Engine) Barrier() sim.Time { return e.clocks.AlignToMax() }

// Breakdown returns copies of the queue-wait and device-service histograms
// accumulated since creation or the last ResetBreakdown.
func (e *Engine) Breakdown() (queueWait, service stats.Histogram) {
	return e.queueWait, e.service
}

// ResetBreakdown clears the latency-breakdown histograms (e.g. so a
// measurement phase excludes warm-up).
func (e *Engine) ResetBreakdown() {
	e.queueWait = stats.Histogram{}
	e.service = stats.Histogram{}
}

// submit carries one request through a slot. closedLoop requests arrive
// when the chosen slot frees; open-loop requests arrive at the given time
// and may queue. This is the single place the non-decreasing-time device
// contract is enforced.
func (e *Engine) submit(kind trace.OpKind, arrival sim.Time, closedLoop bool, do func(at sim.Time) (sim.Time, error)) (Completion, error) {
	slot, free := e.clocks.Earliest()
	issue := free
	if !closedLoop && arrival > issue {
		issue = arrival // device idle before the request even arrives
	}
	if issue < e.lastIssue {
		// Open-loop arrivals may run behind the issue watermark; the device
		// requires non-decreasing times, so late arrivals issue at it.
		issue = e.lastIssue
	}
	if closedLoop {
		arrival = issue
	}
	seq := e.tr.BeginOp(kind, slot, arrival, issue)
	done, err := do(issue)
	if done < issue {
		done = issue // a device must not complete before the issue instant
	}
	e.tr.EndOp(seq, done, err != nil)
	e.clocks.Set(slot, done)
	e.lastIssue = issue
	e.ops++
	e.queueWait.Record(issue.Sub(arrival))
	e.service.Record(done.Sub(issue))
	return Completion{Slot: slot, Arrival: arrival, Issued: issue, Done: done}, err
}

// Put stores a pair through the earliest-free slot (closed loop).
func (e *Engine) Put(key, value []byte) (Completion, error) {
	return e.submit(trace.OpPut, 0, true, func(at sim.Time) (sim.Time, error) {
		return e.dev.Put(at, key, value)
	})
}

// Get reads a key through the earliest-free slot (closed loop). The value
// slice is owned by the device and valid until the next operation.
func (e *Engine) Get(key []byte) (Completion, error) {
	var v []byte
	c, err := e.submit(trace.OpGet, 0, true, func(at sim.Time) (done sim.Time, err error) {
		v, done, err = e.dev.Get(at, key)
		return done, err
	})
	c.Value = v
	return c, err
}

// Delete removes a key through the earliest-free slot (closed loop).
func (e *Engine) Delete(key []byte) (Completion, error) {
	return e.submit(trace.OpDelete, 0, true, func(at sim.Time) (sim.Time, error) {
		return e.dev.Delete(at, key)
	})
}

// Scan runs a range query through the earliest-free slot (closed loop).
func (e *Engine) Scan(start []byte, n int) (Completion, error) {
	var ps []kv.Pair
	c, err := e.submit(trace.OpScan, 0, true, func(at sim.Time) (done sim.Time, err error) {
		ps, done, err = e.dev.Scan(at, start, n)
		return done, err
	})
	c.Pairs = ps
	return c, err
}

// PutAt is the open-loop Put: the request arrives at the given time and
// queues if every slot is busy past it.
func (e *Engine) PutAt(arrival sim.Time, key, value []byte) (Completion, error) {
	return e.submit(trace.OpPut, arrival, false, func(at sim.Time) (sim.Time, error) {
		return e.dev.Put(at, key, value)
	})
}

// GetAt is the open-loop Get.
func (e *Engine) GetAt(arrival sim.Time, key []byte) (Completion, error) {
	var v []byte
	c, err := e.submit(trace.OpGet, arrival, false, func(at sim.Time) (done sim.Time, err error) {
		v, done, err = e.dev.Get(at, key)
		return done, err
	})
	c.Value = v
	return c, err
}

// DeleteAt is the open-loop Delete.
func (e *Engine) DeleteAt(arrival sim.Time, key []byte) (Completion, error) {
	return e.submit(trace.OpDelete, arrival, false, func(at sim.Time) (sim.Time, error) {
		return e.dev.Delete(at, key)
	})
}

// ScanAt is the open-loop Scan.
func (e *Engine) ScanAt(arrival sim.Time, start []byte, n int) (Completion, error) {
	var ps []kv.Pair
	c, err := e.submit(trace.OpScan, arrival, false, func(at sim.Time) (done sim.Time, err error) {
		ps, done, err = e.dev.Scan(at, start, n)
		return done, err
	})
	c.Pairs = ps
	return c, err
}

// Sync drains the queue (a barrier) and issues the device FLUSH, leaving
// every slot at its completion time.
func (e *Engine) Sync() (Completion, error) {
	at := e.Barrier()
	if at < e.lastIssue {
		at = e.lastIssue
	}
	seq := e.tr.BeginOp(trace.OpSync, 0, at, at)
	done, err := e.dev.Sync(at)
	if done < at {
		done = at
	}
	e.tr.EndOp(seq, done, err != nil)
	for i := 0; i < e.clocks.Len(); i++ {
		e.clocks.Set(i, done)
	}
	e.lastIssue = at
	e.ops++
	return Completion{Arrival: at, Issued: at, Done: done}, err
}
