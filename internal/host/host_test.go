package host_test

import (
	"fmt"
	"math/rand"
	"testing"

	"anykey"
	"anykey/internal/core"
	"anykey/internal/device"
	"anykey/internal/host"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
)

// legacyPool reimplements the closed-loop worker pool the harness used
// before the host engine existed: per-worker clocks, earliest worker
// issues next, caller moves the clock to the completion time. It is the
// reference the engine must reproduce bit for bit.
type legacyPool struct{ clocks []sim.Time }

func newLegacyPool(n int) *legacyPool { return &legacyPool{clocks: make([]sim.Time, n)} }

func (p *legacyPool) next() *sim.Time {
	best := 0
	for i := 1; i < len(p.clocks); i++ {
		if p.clocks[i] < p.clocks[best] {
			best = i
		}
	}
	return &p.clocks[best]
}

// op is one request of a deterministic mixed workload.
type op struct {
	kind int // 0 put, 1 get, 2 delete, 3 scan
	key  []byte
	val  []byte
	n    int
}

func mixedOps(seed int64, count int) []op {
	rng := rand.New(rand.NewSource(seed))
	key := func(i int) []byte { return []byte(fmt.Sprintf("host-%05d", i)) }
	ops := make([]op, 0, count)
	for i := 0; i < count; i++ {
		id := rng.Intn(600)
		switch r := rng.Float64(); {
		case r < 0.55:
			ops = append(ops, op{kind: 0, key: key(id),
				val: []byte(fmt.Sprintf("val-%d-%04d-%0*d", id, i, 40+rng.Intn(120), 7))})
		case r < 0.85:
			ops = append(ops, op{kind: 1, key: key(id)})
		case r < 0.92:
			ops = append(ops, op{kind: 2, key: key(id)})
		default:
			ops = append(ops, op{kind: 3, key: key(id), n: 1 + rng.Intn(10)})
		}
	}
	return ops
}

// runLegacy drives ops against the device implementation directly with a
// hand-rolled worker pool — the pre-engine closed loop, explicit issue
// times and all — and returns the per-op latency sequence.
func runLegacy(t *testing.T, dev device.KVSSD, depth int, ops []op) []sim.Duration {
	t.Helper()
	pool := newLegacyPool(depth)
	lats := make([]sim.Duration, 0, len(ops))
	for i, o := range ops {
		clock := pool.next()
		issue := *clock
		var done sim.Time
		var err error
		switch o.kind {
		case 0:
			done, err = dev.Put(issue, o.key, o.val)
		case 1:
			_, done, err = dev.Get(issue, o.key)
			if err == kv.ErrNotFound {
				err = nil
			}
		case 2:
			done, err = dev.Delete(issue, o.key)
		case 3:
			_, done, err = dev.Scan(issue, o.key, o.n)
		}
		if err != nil {
			t.Fatalf("legacy op %d: %v", i, err)
		}
		*clock = done
		lats = append(lats, done.Sub(issue))
	}
	return lats
}

// freshImpl builds the same firmware anykey.Open mounts for a 32 MiB
// AnyKey+ device, but exposed as the raw device interface the legacy pool
// drove before the engine existed.
func freshImpl(t *testing.T) device.KVSSD {
	t.Helper()
	geo := nand.Geometry{Channels: 8, ChipsPerChannel: 8, BlocksPerChip: 1, PagesPerBlock: 64, PageSize: 8192}
	d, err := core.New(core.Config{Geometry: geo, Plus: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runEngine drives the same ops through the host engine.
func runEngine(t *testing.T, dev *anykey.Device, depth int, ops []op) []sim.Duration {
	t.Helper()
	eng, err := dev.NewEngine(depth)
	if err != nil {
		t.Fatal(err)
	}
	lats := make([]sim.Duration, 0, len(ops))
	for i, o := range ops {
		var c anykey.Completion
		var err error
		switch o.kind {
		case 0:
			c, err = eng.Put(o.key, o.val)
		case 1:
			c, err = eng.Get(o.key)
			if err == anykey.ErrNotFound {
				err = nil
			}
		case 2:
			c, err = eng.Delete(o.key)
		case 3:
			c, err = eng.Scan(o.key, o.n)
		}
		if err != nil {
			t.Fatalf("engine op %d: %v", i, err)
		}
		if c.QueueWait() != 0 {
			t.Fatalf("closed-loop op %d has queue wait %v", i, c.QueueWait())
		}
		lats = append(lats, c.Latency())
	}
	return lats
}

func freshDevice(t *testing.T) *anykey.Device {
	t.Helper()
	dev, err := anykey.Open(anykey.Options{Design: anykey.DesignAnyKeyPlus, CapacityMB: 32})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// At every queue depth — and in particular at QD=1, the legacy closed
// loop — the engine must reproduce the hand-rolled worker pool's latency
// sequence bit for bit.
func TestEngineMatchesLegacyPool(t *testing.T) {
	for _, depth := range []int{1, 4, 64} {
		t.Run(fmt.Sprintf("qd%d", depth), func(t *testing.T) {
			ops := mixedOps(int64(depth)*7+1, 4000)
			legacy := runLegacy(t, freshImpl(t), depth, ops)
			engine := runEngine(t, freshDevice(t), depth, ops)
			for i := range ops {
				if legacy[i] != engine[i] {
					t.Fatalf("op %d: legacy latency %v (%dns), engine %v (%dns)",
						i, legacy[i], int64(legacy[i]), engine[i], int64(engine[i]))
				}
			}
		})
	}
}

// A QD=64 run must be exactly reproducible across repeats.
func TestEngineDeterministicAtDepth64(t *testing.T) {
	ops := mixedOps(42, 4000)
	first := runEngine(t, freshDevice(t), 64, ops)
	second := runEngine(t, freshDevice(t), 64, ops)
	for i := range ops {
		if first[i] != second[i] {
			t.Fatalf("op %d: run 1 latency %v, run 2 latency %v", i, first[i], second[i])
		}
	}
}

// fakeDev is a fixed-service-time device that asserts the engine's side of
// the contract: issue times must be non-decreasing.
type fakeDev struct {
	service sim.Duration
	lastAt  sim.Time
	stats   *device.Stats
}

func newFakeDev(service sim.Duration) *fakeDev {
	return &fakeDev{service: service, stats: device.NewStats()}
}

func (f *fakeDev) occupy(at sim.Time) (sim.Time, error) {
	if at < f.lastAt {
		return 0, fmt.Errorf("fake device: issue time went backwards (%v after %v)", at, f.lastAt)
	}
	f.lastAt = at
	return at.Add(f.service), nil
}

func (f *fakeDev) Put(at sim.Time, key, value []byte) (sim.Time, error) { return f.occupy(at) }
func (f *fakeDev) Delete(at sim.Time, key []byte) (sim.Time, error)     { return f.occupy(at) }
func (f *fakeDev) Get(at sim.Time, key []byte) ([]byte, sim.Time, error) {
	done, err := f.occupy(at)
	return nil, done, err
}
func (f *fakeDev) Scan(at sim.Time, start []byte, n int) ([]kv.Pair, sim.Time, error) {
	done, err := f.occupy(at)
	return nil, done, err
}
func (f *fakeDev) Sync(at sim.Time) (sim.Time, error) { return f.occupy(at) }
func (f *fakeDev) Stats() *device.Stats               { return f.stats }
func (f *fakeDev) Metadata() []device.MetaStructure   { return nil }

// Open-loop arrivals beyond the queue depth wait for a slot, and the wait
// is accounted as queue time, not service time.
func TestOpenLoopQueueWait(t *testing.T) {
	const service = 100 * sim.Nanosecond
	eng, err := host.New(newFakeDev(service), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three simultaneous arrivals on two slots: the third queues.
	for i, want := range []sim.Duration{0, 0, 100} {
		c, err := eng.PutAt(0, []byte("k"), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if c.QueueWait() != want {
			t.Fatalf("arrival %d: queue wait %v, want %dns", i, c.QueueWait(), int64(want))
		}
		if c.Service() != service {
			t.Fatalf("arrival %d: service %v", i, c.Service())
		}
	}
}

// A late (out-of-order) arrival must not issue before an earlier one: the
// engine clamps it to the issue watermark, keeping the device contract.
func TestOpenLoopEnforcesNonDecreasingIssue(t *testing.T) {
	eng, err := host.New(newFakeDev(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PutAt(500, []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	c, err := eng.PutAt(300, []byte("b"), nil) // arrives "in the past"
	if err != nil {
		t.Fatal(err)
	}
	if c.Issued != 500 {
		t.Fatalf("late arrival issued at %v; want clamped to 500ns", c.Issued)
	}
	if c.QueueWait() != 200 {
		t.Fatalf("late arrival queue wait %v; want 200ns", c.QueueWait())
	}
}

// Barrier aligns every slot and Sync drains the queue through the barrier.
func TestBarrierAndSync(t *testing.T) {
	eng, err := host.New(newFakeDev(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := eng.Put([]byte("k"), nil); err != nil {
			t.Fatal(err)
		}
	}
	at := eng.Barrier()
	if at != eng.Now() {
		t.Fatalf("barrier returned %v, Now() = %v", at, eng.Now())
	}
	c, err := eng.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if c.Issued != at || eng.Now() != c.Done {
		t.Fatalf("sync issued %v done %v; barrier was %v, Now() %v", c.Issued, c.Done, at, eng.Now())
	}
}
