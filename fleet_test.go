package anykey

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func smallFleetOpts(factor, quorum int) ClusterOptions {
	o := smallClusterOpts()
	o.Replication = ReplicationOptions{Factor: factor, WriteQuorum: quorum}
	return o
}

func TestFleetOptionsValidation(t *testing.T) {
	if _, err := OpenCluster(smallFleetOpts(-1, 0)); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("negative factor: %v", err)
	}
	if _, err := OpenCluster(smallFleetOpts(9, 0)); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("factor above shards: %v", err)
	}
	if _, err := OpenCluster(smallFleetOpts(2, 3)); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("quorum above factor: %v", err)
	}
	if _, err := OpenCluster(smallFleetOpts(0, 2)); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("quorum without factor: %v", err)
	}
	o := smallFleetOpts(2, 0)
	o.Router = RouteModulo
	if _, err := OpenCluster(o); !errors.Is(err, ErrUnsupported) {
		t.Errorf("replication over modulo: %v", err)
	}
	// WriteQuorum normalizes to Factor.
	o = smallFleetOpts(3, 0)
	if err := o.Validate(); err != nil || o.Replication.WriteQuorum != 3 {
		t.Errorf("quorum default: %+v %v", o.Replication, err)
	}

	// A non-replicated cluster refuses the fleet-only calls.
	plain, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.AddShard(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("AddShard on plain cluster: %v", err)
	}
	if err := plain.KillShard(0, KillPowerCut); !errors.Is(err, ErrUnsupported) {
		t.Errorf("KillShard on plain cluster: %v", err)
	}
	if got := plain.Replication(); got.Factor != 0 {
		t.Errorf("plain Replication() = %+v", got)
	}
}

func TestFleetRoundTripAndKill(t *testing.T) {
	c, err := OpenCluster(smallFleetOpts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var keys, vals [][]byte
	for i := 0; i < 200; i++ {
		keys = append(keys, []byte(fmt.Sprintf("user:%05d", i)))
		vals = append(vals, bytes.Repeat([]byte{byte('a' + i%26)}, 80))
	}
	pr, err := c.MultiPut(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if pr.Latency() < 0 {
		t.Fatalf("negative batch latency %v", pr.Latency())
	}

	if err := c.KillShard(1, KillGrownBad); err != nil {
		t.Fatal(err)
	}
	state, cause, err := c.ShardState(1)
	if err != nil || state != "dead" || cause != "grown-bad" {
		t.Fatalf("ShardState = %q/%q (%v)", state, cause, err)
	}
	// Every key survives the kill at R=2.
	gr, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if gr.Errs[i] != nil || !bytes.Equal(gr.Completions[i].Value, vals[i]) {
			t.Fatalf("key %d after kill: %v", i, gr.Errs[i])
		}
	}
	fs, err := c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Repl.DeadMembers != 1 || fs.Repl.Factor != 2 {
		t.Fatalf("FleetStats.Repl = %+v", fs.Repl)
	}

	// Rebuild restores the replica and the counters say so.
	rb, err := c.RebuildShard(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Run(); err != nil {
		t.Fatal(err)
	}
	fs, _ = c.FleetStats()
	if fs.Repl.Rebuilds != 1 || fs.Repl.RebuiltKeys == 0 || fs.Repl.DeadMembers != 0 {
		t.Fatalf("post-rebuild FleetStats.Repl = %+v", fs.Repl)
	}
}

func TestFleetTopologyChangeUnderTraffic(t *testing.T) {
	c, err := OpenCluster(smallFleetOpts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var keys, vals [][]byte
	for i := 0; i < 240; i++ {
		keys = append(keys, []byte(fmt.Sprintf("item:%05d", i)))
		vals = append(vals, bytes.Repeat([]byte{byte('0' + i%10)}, 64))
	}
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}

	mig, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 5 {
		t.Fatalf("Shards() after AddShard = %d", c.Shards())
	}
	if _, err := c.RemoveShard(0); !errors.Is(err, ErrMigrationInProgress) {
		t.Fatalf("RemoveShard mid-migration: %v", err)
	}
	if st := c.Migrating(); !st.Active || st.Kind != "add" {
		t.Fatalf("Migrating() = %+v", st)
	}
	// Interleave: step, read, step — double-read keeps every key visible.
	if _, err := mig.Step(30); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 11 {
		v, _, err := c.Get(keys[i])
		if err != nil || !bytes.Equal(v, vals[i]) {
			t.Fatalf("mid-migration get %d: %v", i, err)
		}
	}
	if err := mig.Run(); err != nil {
		t.Fatal(err)
	}
	if st := c.Migrating(); st.Active || st.Epoch != 1 {
		t.Fatalf("post-commit Migrating() = %+v", st)
	}
	fs, _ := c.FleetStats()
	if fs.Repl.MigratedKeys == 0 {
		t.Fatal("no keys migrated")
	}
	for i := range keys {
		v, _, err := c.Get(keys[i])
		if err != nil || !bytes.Equal(v, vals[i]) {
			t.Fatalf("post-migration get %d: %v", i, err)
		}
	}
}

func TestFleetSentinelRoundTrips(t *testing.T) {
	for _, sent := range []error{ErrQuorumNotMet, ErrShardDown, ErrMigrationInProgress} {
		wrapped := fmt.Errorf("context: %w", sent)
		if !errors.Is(wrapped, sent) {
			t.Errorf("errors.Is failed for %v", sent)
		}
	}
	// Live round trip: kill enough members that writes fail quorum, then
	// all members, so reads report every-replica-down.
	c, err := OpenCluster(smallFleetOpts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := []byte("sentinel-key")
	if _, err := c.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for s := 1; s < 4; s++ {
		if err := c.KillShard(s, KillPowerCut); err != nil {
			t.Fatal(err)
		}
	}
	sawQuorum := false
	for i := 0; i < 50 && !sawQuorum; i++ {
		_, err := c.Put([]byte(fmt.Sprintf("qk-%d", i)), []byte("v"))
		if errors.Is(err, ErrQuorumNotMet) {
			sawQuorum = true
		}
	}
	if !sawQuorum {
		t.Fatal("never saw ErrQuorumNotMet with three dead members")
	}
	if err := c.KillShard(0, KillPowerCut); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(key); !errors.Is(err, ErrShardDown) {
		t.Fatalf("get with all dead: %v, want ErrShardDown", err)
	}
}
