package anykey

// Cross-shard transactions on a Cluster: atomic Multi*-shaped batches via
// epoch-based two-phase commit over the per-shard event loops, OCC
// read-modify-write primitives (Incr/Append/CompareAndSwap and the general
// Txn closure) with validate-at-commit and deterministic bounded retry, and
// doppel-style phase splitting for contended keys. The protocol lives in
// internal/txn; this file adapts it to both cluster backends and shapes the
// public surface.

import (
	"errors"
	"fmt"

	"anykey/internal/cluster"
	"anykey/internal/cluster/fleet"
	"anykey/internal/kv"
	"anykey/internal/trace"
	"anykey/internal/txn"
)

// Transaction-facing re-exports.
type (
	// TxnOptions tunes the transaction layer: OCC retry budget and virtual
	// backoff, plus the hot-key split-phase thresholds. The zero value is
	// valid (defaults documented on the fields).
	TxnOptions = txn.Options
	// Tx is one open optimistic transaction; see Cluster.BeginTxn.
	Tx = txn.Tx
	// TxnOp is one operation of an atomic batch: a Put of Key → Value, or a
	// Delete of Key when Delete is set.
	TxnOp = txn.Op
	// TxnStats is the transaction layer's cumulative counter snapshot.
	TxnStats = txn.Stats
)

// txnBackend adapts either cluster backend to the txn.Backend the
// coordinator drives. All timing flows through the backend's shard clocks,
// so transactions inherit the simulator's determinism.
type clusterTxnBackend struct {
	c *cluster.Cluster
}

func (b clusterTxnBackend) Shards() int                { return b.c.Shards() }
func (b clusterTxnBackend) ShardFor(key []byte) int    { return b.c.ShardFor(key) }
func (b clusterTxnBackend) Now(s int) Time             { return b.c.ShardNow(s) }
func (b clusterTxnBackend) Tracer(s int) *trace.Tracer { return b.c.Tracer(s) }

func (b clusterTxnBackend) Get(key []byte) ([]byte, bool, error) {
	comp, err := b.c.Get(key)
	if err != nil {
		if errors.Is(err, kv.ErrNotFound) {
			return nil, false, nil
		}
		return nil, false, err
	}
	// Single-key cluster reads return device-owned buffers; the coordinator
	// holds values across later operations, so copy out.
	return append([]byte(nil), comp.Value...), true, nil
}

func (b clusterTxnBackend) Apply(ops []txn.Op) error {
	res, err := b.c.Apply(toBatchOps(ops))
	if err != nil {
		return err
	}
	return res.FirstErr()
}

func (b clusterTxnBackend) SyncShards(shards []int) error {
	_, err := b.c.SyncShards(shards)
	return err
}

func (b clusterTxnBackend) ScanShard(s int, start []byte, n int) ([]kv.Pair, error) {
	comp, err := b.c.ScanAt(s, b.c.ShardNow(s), start, n)
	if err != nil {
		return nil, err
	}
	return copyPairs(comp.Pairs), nil
}

type fleetTxnBackend struct {
	f *fleet.Fleet
}

func (b fleetTxnBackend) Shards() int                { return len(b.f.Members()) }
func (b fleetTxnBackend) ShardFor(key []byte) int    { return b.f.PrimaryFor(key) }
func (b fleetTxnBackend) Now(s int) Time             { return b.f.MemberNow(s) }
func (b fleetTxnBackend) Tracer(s int) *trace.Tracer { return b.f.Tracer(s) }

func (b fleetTxnBackend) Get(key []byte) ([]byte, bool, error) {
	res := b.f.Get(key)
	if res.Err != nil {
		if errors.Is(res.Err, kv.ErrNotFound) {
			return nil, false, nil
		}
		return nil, false, res.Err
	}
	return res.Value, true, nil // fleet reads already copy out
}

func (b fleetTxnBackend) Apply(ops []txn.Op) error {
	return b.f.Apply(toBatchOps(ops))
}

func (b fleetTxnBackend) SyncShards(shards []int) error {
	_, err := b.f.SyncShards(shards)
	return err
}

func (b fleetTxnBackend) ScanShard(s int, start []byte, n int) ([]kv.Pair, error) {
	comp, err := b.f.ScanAt(s, b.f.MemberNow(s), start, n)
	if err != nil {
		if errors.Is(err, fleet.ErrShardDown) {
			// A dead member's records live on in its replicas' keyspaces;
			// recovery scans the survivors and skips the corpse.
			return nil, nil
		}
		return nil, err
	}
	return copyPairs(comp.Pairs), nil
}

func toBatchOps(ops []txn.Op) []cluster.BatchOp {
	out := make([]cluster.BatchOp, len(ops))
	for i, op := range ops {
		out[i] = cluster.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete}
	}
	return out
}

// copyPairs detaches scan results from the device-owned buffers: recovery
// holds pages across subsequent operations.
func copyPairs(in []kv.Pair) []kv.Pair {
	out := make([]kv.Pair, len(in))
	for i, p := range in {
		out[i] = kv.Pair{
			Key:   append([]byte(nil), p.Key...),
			Value: append([]byte(nil), p.Value...),
		}
	}
	return out
}

// atomicGate rejects atomic batches — and the OCC transactions whose
// multi-key commits take the same 2PC path — when replication cannot make
// the commit record decisive: Factor > 1 with read-one reads and
// WriteQuorum < Factor would let a lagging replica serve a pre-commit view
// of a key another replica already applied.
func (c *Cluster) atomicGate() error {
	r := c.opts.Replication
	if c.f != nil && r.Factor > 1 && r.ReadMode == ReadOne && r.WriteQuorum < r.Factor {
		return fmt.Errorf("%w: Factor %d with ReadOne and WriteQuorum %d (need WriteQuorum == Factor or ReadRepair)",
			ErrAtomicUnsupported, r.Factor, r.WriteQuorum)
	}
	return nil
}

// BeginTxn opens one optimistic transaction. Get records the version of each
// key at first read; Commit validates every read version and applies the
// write set — through the atomic 2PC path when it spans more than one write.
// A validation failure reports ErrTxnConflict; retry by rebuilding the
// transaction (or use Txn, which retries a closure for you). Because a
// transaction's write set may span shards and commit through 2PC, the same
// replication configurations AtomicExec rejects are rejected here too
// (ErrAtomicUnsupported), up front rather than at commit.
func (c *Cluster) BeginTxn() (*Tx, error) {
	if err := c.gate(); err != nil {
		return nil, err
	}
	if err := c.atomicGate(); err != nil {
		return nil, err
	}
	return c.co.Begin(), nil
}

// Txn runs fn inside a transaction and commits, retrying ErrTxnConflict up
// to TxnOptions.MaxRetries times with capped-doubling virtual backoff. The
// returned duration is the simulated span: the merged cluster clock advance
// plus the virtual backoff the retries waited out. When the budget is
// exhausted the error matches both ErrTxnAborted and ErrTxnConflict. Like
// BeginTxn, replication configurations that cannot make a multi-key commit
// decisive are rejected with ErrAtomicUnsupported.
func (c *Cluster) Txn(fn func(*Tx) error) (Duration, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if err := c.atomicGate(); err != nil {
		return 0, err
	}
	before := c.Now()
	backoff, err := c.co.Run(fn)
	return c.Now().Sub(before) + backoff, err
}

// Incr atomically adds delta to the decimal counter at key (an absent key
// counts from zero) and returns the new value. On a split-phase hot key the
// returned value is the phase-local running total — exact again once the
// phase merges. Conflicts retry under the TxnOptions policy.
func (c *Cluster) Incr(key []byte, delta int64) (int64, Duration, error) {
	if err := c.gate(); err != nil {
		return 0, 0, err
	}
	before := c.Now()
	val, backoff, err := c.co.Incr(key, delta)
	return val, c.Now().Sub(before) + backoff, err
}

// Append atomically appends suffix to the value at key (an absent key
// appends to empty). Conflicts retry under the TxnOptions policy.
func (c *Cluster) Append(key, suffix []byte) (Duration, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	before := c.Now()
	backoff, err := c.co.Append(key, suffix)
	return c.Now().Sub(before) + backoff, err
}

// CompareAndSwap replaces key's value with new iff the current value equals
// old (nil or empty old means "expect absent"). A mismatch reports
// ErrTxnConflict without retrying — CAS hands the race to the caller.
func (c *Cluster) CompareAndSwap(key, old, new []byte) (Duration, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	before := c.Now()
	backoff, err := c.co.CompareAndSwap(key, old, new)
	return c.Now().Sub(before) + backoff, err
}

// RawWrite coordinates a non-transactional write of keys with the
// transaction layer: it merges any split-phase buffer covering one of the
// keys, runs write while the coordinator is quiesced — no transaction can
// validate or apply against a half-landed state — and bumps each key's OCC
// version, so an in-flight transaction that read a pre-write value aborts
// with ErrTxnConflict instead of committing a stale derivation over the
// write. Front ends that expose both raw puts/deletes and transactional
// commands on one keyspace (anykeyserver's SET/DEL next to INCR/CAS/EXEC)
// must route the raw writes through here; raw writes issued behind the
// coordinator's back are invisible to OCC validation. Versions are bumped
// even when write returns an error, since a failed batch may have applied
// some operations. Reads need no barrier — they cannot lose updates — but
// note that plain Get/MultiGet observe shard state directly and may see an
// atomic batch mid-apply; use a transaction when that matters.
func (c *Cluster) RawWrite(keys [][]byte, write func() error) error {
	if err := c.gate(); err != nil {
		return err
	}
	return c.co.RawWrite(keys, write)
}

// AtomicMultiPut is MultiPut with all-or-nothing semantics: the batch
// commits on every involved shard or none, surviving a crash at any point
// (recovery rolls a batch with a durable commit record forward and any
// other batch back). The call-level error carries the verdict — per-op Errs
// stay nil — and BatchResult.Atomic/TxnID identify the commit.
func (c *Cluster) AtomicMultiPut(keys, values [][]byte) (*BatchResult, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("%w: %d keys, %d values", ErrInvalidOptions, len(keys), len(values))
	}
	ops := make([]TxnOp, len(keys))
	for i := range keys {
		ops[i] = TxnOp{Key: keys[i], Value: values[i]}
	}
	return c.AtomicExec(ops)
}

// AtomicMultiDelete is MultiDelete with all-or-nothing semantics.
func (c *Cluster) AtomicMultiDelete(keys [][]byte) (*BatchResult, error) {
	ops := make([]TxnOp, len(keys))
	for i := range keys {
		ops[i] = TxnOp{Key: keys[i], Delete: true}
	}
	return c.AtomicExec(ops)
}

// AtomicExec commits a mixed put/delete batch atomically across shards. On
// replicated fleets the prepare/commit/apply writes each meet WriteQuorum;
// configurations where that cannot make the commit decisive are rejected
// with ErrAtomicUnsupported (see the sentinel).
func (c *Cluster) AtomicExec(ops []TxnOp) (*BatchResult, error) {
	if err := c.gate(); err != nil {
		return nil, err
	}
	if err := c.atomicGate(); err != nil {
		return nil, err
	}
	start := c.Now()
	id, err := c.co.Atomic(ops)
	if err != nil {
		return nil, err
	}
	done := c.Now()
	res := &BatchResult{
		Completions: make([]Completion, len(ops)),
		Shards:      make([]int, len(ops)),
		Errs:        make([]error, len(ops)),
		Start:       start,
		Done:        done,
		Atomic:      true,
		TxnID:       id,
	}
	for i, op := range ops {
		res.Shards[i] = c.ShardFor(op.Key)
		// The batch is atomic: every op spans the whole commit. Individual
		// flash-level instants are deliberately not surfaced — the unit of
		// completion is the batch.
		res.Completions[i] = Completion{Arrival: start, Issued: start, Done: done}
	}
	return res, nil
}

// TxnStats snapshots the transaction layer's cumulative counters.
func (c *Cluster) TxnStats() TxnStats { return c.co.Stats() }

// RecoverTxns scans the reserved transaction keyspace on every shard and
// resolves what a crash left behind: batches with a durable commit record
// roll forward (their writes re-applied and synced), batches without roll
// back (their intents discarded — user keys are never written before the
// commit record). Returns how many batches went each way. Call it after
// rebuilding a cluster from surviving devices.
func (c *Cluster) RecoverTxns() (forward, back int, err error) {
	if err := c.gate(); err != nil {
		return 0, 0, err
	}
	return c.co.Recover()
}
