package anykey

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func smallClusterOpts() ClusterOptions {
	return ClusterOptions{
		Shards:     4,
		QueueDepth: 8,
		Device:     Options{CapacityMB: 16, Channels: 4, ChipsPerChannel: 4},
	}
}

func TestDefaultOptionsNormalized(t *testing.T) {
	o := DefaultOptions()
	if o.CapacityMB != 128 || o.PageSize != 8192 || o.Channels != 8 || o.ChipsPerChannel != 8 {
		t.Fatalf("geometry defaults wrong: %+v", o)
	}
	if o.DRAMBytes == 0 || o.MemtableBytes == 0 || o.GrowthFactor != 4 ||
		o.GroupPages != 32 || o.LogFraction != 0.50 || o.Seed != 1 {
		t.Fatalf("derived defaults not normalized: %+v", o)
	}
	// A device opened from the normalized defaults must behave exactly like
	// one opened from the zero Options: same clock after the same ops.
	a, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if _, err := a.Put(k, bytes.Repeat([]byte{'x'}, 100)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Put(k, bytes.Repeat([]byte{'x'}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Now() != b.Now() {
		t.Fatalf("zero Options and DefaultOptions diverge: %v vs %v", a.Now(), b.Now())
	}
}

func TestValidateNormalizesInPlace(t *testing.T) {
	o := Options{CapacityMB: 16, Channels: 4, ChipsPerChannel: 4}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.CapacityMB != 16 || o.Channels != 4 {
		t.Fatal("explicit values overwritten")
	}
	if o.DRAMBytes == 0 || o.Seed == 0 || o.GroupPages == 0 {
		t.Fatalf("zero values not normalized: %+v", o)
	}
	// Validating twice is a no-op.
	before := o
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o != before {
		t.Fatal("second Validate changed a normalized Options")
	}
}

// TestErrorSentinelRoundTrips pins the public error contract: every failure
// mode surfaces a sentinel reachable with errors.Is through %w wrapping.
func TestErrorSentinelRoundTrips(t *testing.T) {
	// ErrInvalidOptions: out-of-range field.
	if _, err := Open(Options{CapacityMB: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("negative capacity: %v", err)
	}
	// ErrInvalidOptions: unknown design.
	if _, err := Open(Options{Design: Design(42)}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("unknown design: %v", err)
	}
	// ErrInvalidOptions: geometry too small for the chip grid.
	if _, err := Open(Options{CapacityMB: 8}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("tiny capacity: %v", err)
	}
	// ErrInvalidOptions: group larger than an erase block.
	if _, err := Open(Options{GroupPages: 1 << 20}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("oversized group: %v", err)
	}

	dev, err := Open(Options{CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	// ErrInvalidOptions: bad engine depth.
	if _, err := dev.NewEngine(0); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("depth 0: %v", err)
	}
	// ErrNotFound and ErrEmptyKey from operations.
	if _, _, err := dev.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v", err)
	}
	if _, err := dev.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	// ErrClosed after Close.
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed put: %v", err)
	}

	// ErrUnsupported: PowerCycle on PinK.
	pk, err := Open(Options{Design: DesignPinK, CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := pk.PowerCycle(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("pink power cycle: %v", err)
	}

	// Cluster sentinels.
	if _, err := OpenCluster(ClusterOptions{Shards: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("negative shards: %v", err)
	}
	if _, err := OpenCluster(ClusterOptions{Router: RouterPolicy(42)}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("unknown router: %v", err)
	}
	if _, err := OpenCluster(ClusterOptions{Device: Options{Faults: &FaultPlan{ReadErrorRate: 0.1}}}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("cluster faults: %v", err)
	}
}

func TestClusterRoundTrip(t *testing.T) {
	c, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d", c.Shards())
	}

	var keys, vals [][]byte
	for i := 0; i < 200; i++ {
		keys = append(keys, []byte(fmt.Sprintf("user:%05d", i)))
		vals = append(vals, bytes.Repeat([]byte{byte('a' + i%26)}, 80))
	}
	pr, err := c.MultiPut(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if pr.Latency() < 0 {
		t.Fatalf("negative batch latency %v", pr.Latency())
	}
	gr, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if gr.Errs[i] != nil {
			t.Fatalf("get %q: %v", keys[i], gr.Errs[i])
		}
		if !bytes.Equal(gr.Completions[i].Value, vals[i]) {
			t.Fatalf("get %q: wrong value", keys[i])
		}
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.LiveKeys != 200 || len(st.PerShard) != 4 {
		t.Fatalf("stats rollup: %d live keys over %d shards", st.LiveKeys, len(st.PerShard))
	}
	if md := c.Metadata(); len(md) == 0 {
		t.Fatal("empty metadata rollup")
	}

	// Single-key path agrees with the router.
	k := []byte("single")
	if _, err := c.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.Get(k)
	if err != nil || string(v) != "v" {
		t.Fatalf("single get: %q, %v", v, err)
	}
	if _, err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	c, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MultiGet([][]byte{[]byte("k")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed MultiGet: %v", err)
	}
	if _, err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed Put: %v", err)
	}
	if _, err := c.Barrier(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed Barrier: %v", err)
	}
}

func TestClusterShardSeedsDecorrelated(t *testing.T) {
	c, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Identical per-shard seeds would be invisible from the outside, but
	// the per-shard clocks after an even load should not be in lockstep for
	// every shard pair — a weak but cheap decorrelation check.
	var keys, vals [][]byte
	for i := 0; i < 400; i++ {
		keys = append(keys, []byte(fmt.Sprintf("spread:%06d", i)))
		vals = append(vals, bytes.Repeat([]byte{'z'}, 120))
	}
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	clocks := map[Time]bool{}
	for _, ss := range st.PerShard {
		clocks[ss.Now] = true
	}
	if len(clocks) < 2 {
		t.Fatalf("all %d shard clocks identical (%v) — suspicious lockstep", len(st.PerShard), st.Now)
	}
}

func TestClusterTraceExport(t *testing.T) {
	opts := smallClusterOpts()
	opts.Shards = 2
	opts.Device.Trace = &TraceOptions{EventBuffer: 1 << 14, OpBuffer: 1 << 12}
	c, err := OpenCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var keys, vals [][]byte
	for i := 0; i < 64; i++ {
		keys = append(keys, []byte(fmt.Sprintf("t:%04d", i)))
		vals = append(vals, bytes.Repeat([]byte{'t'}, 64))
	}
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MultiGet(keys); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"shard0 host"`, `"shard1 host"`, `"shard0 flash dies"`, `"shard1 flash dies"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace export missing %s", want)
		}
	}
	if rep := c.Blame(BlameOptions{Percentile: 90}); rep == nil || rep.TotalOps == 0 {
		t.Fatalf("blame rollup empty: %+v", rep)
	}

	// An untraced cluster refuses the export with the sentinel.
	plain, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.WriteChromeTrace(&bytes.Buffer{}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("untraced export: %v", err)
	}
}

// TestClusterStatsConcurrentWithOps drives every shard from its own
// goroutine (the network server's access pattern) while scraping Stats and
// Metadata from observers — the satellite contract that a metrics endpoint
// can watch a live cluster. Run under -race this pins the snapshot-under-
// lock guarantee.
func TestClusterStatsConcurrentWithOps(t *testing.T) {
	c, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan struct{})
	var workers sync.WaitGroup
	for g := 0; g < c.Shards(); g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			// Each goroutine owns the keys that route to "its" shard by
			// filtering on ShardFor, so shard engines see one driver each.
			var arrival Time
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				key := []byte(fmt.Sprintf("conc-%d-%06d", g, i))
				if c.ShardFor(key) != g {
					continue
				}
				arrival = arrival.Add(Duration(1000))
				if _, _, err := c.PutAt(arrival, key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.GetAt(arrival, key); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 3; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				st := c.Stats()
				if st.Shards != 4 || len(st.PerShard) != 4 {
					t.Errorf("bad snapshot: %+v", st)
					return
				}
				var perShard int64
				for _, ss := range st.PerShard {
					perShard += ss.Ops
				}
				if perShard != st.Ops {
					t.Errorf("rollup mismatch: %d != %d", perShard, st.Ops)
					return
				}
				_ = c.Metadata()
				_ = c.Now()
			}
		}()
	}
	scrapers.Wait()
	close(done)
	workers.Wait()
	if c.Stats().Ops == 0 {
		t.Fatal("no operations recorded")
	}
}

// TestDeviceStatsSnapshotConcurrent reads StatsSnapshot while another
// goroutine writes — the single-device half of the same contract.
func TestDeviceStatsSnapshotConcurrent(t *testing.T) {
	dev, err := Open(Options{CapacityMB: 16, Channels: 4, ChipsPerChannel: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 500; i++ {
			key := []byte(fmt.Sprintf("snap-%06d", i))
			if _, err := dev.Put(key, bytes.Repeat([]byte("x"), 64)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		if last := dev.StatsSnapshot(); last.LiveBytes < 0 || last.DRAMCapacity <= 0 {
			t.Fatalf("implausible snapshot: %+v", last)
		}
	}
	wg.Wait()
	if dev.Now() == 0 {
		t.Fatal("writer made no progress")
	}
}

func TestClusterCacheAndFootprintRollup(t *testing.T) {
	// Uncached cluster: footprint present, cache absent.
	plain, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, ok := plain.CacheStats(); ok {
		t.Fatal("uncached cluster reports cache stats")
	}

	opts := smallClusterOpts()
	opts.Device.Cache = &CacheOptions{CapacityBytes: 1 << 20, AdmitAfter: 1}
	c, err := OpenCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var keys, vals [][]byte
	for i := 0; i < 200; i++ {
		keys = append(keys, []byte(fmt.Sprintf("cc-%05d", i)))
		vals = append(vals, bytes.Repeat([]byte{byte('a' + i%26)}, 64))
	}
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	// Two read rounds: the first admits (AdmitAfter=1), the second hits DRAM.
	for round := 0; round < 2; round++ {
		br, err := c.MultiGet(keys)
		if err != nil {
			t.Fatal(err)
		}
		if err := br.FirstErr(); err != nil {
			t.Fatal(err)
		}
	}
	cs, ok := c.CacheStats()
	if !ok || cs.Hits == 0 || cs.Admitted == 0 {
		t.Fatalf("cluster cache rollup = %+v (ok=%v)", cs, ok)
	}
	st := c.Stats()
	if st.Cache == nil {
		t.Fatal("Stats().Cache nil on a cached cluster")
	}
	var perShardHits int64
	for _, ss := range st.PerShard {
		if ss.Cache == nil {
			t.Fatalf("shard %d missing cache stats", ss.Shard)
		}
		perShardHits += ss.Cache.Hits
	}
	if perShardHits != st.Cache.Hits {
		t.Fatalf("per-shard hits %d != rollup %d", perShardHits, st.Cache.Hits)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	fp := c.Footprint()
	if fp.LivePages == 0 || fp.ResidentBytes == 0 {
		t.Fatalf("cluster footprint empty after writes: %+v", fp)
	}
}
