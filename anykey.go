// Package anykey is a simulator of the AnyKey key-value SSD (Park et al.,
// ASPLOS 2025) and of the PinK baseline it improves upon. It reproduces the
// full device stack in pure Go: a virtual-time NAND flash array with the
// paper's TLC latencies, the PinK LSM-tree FTL (meta segments + pinned level
// lists), and the AnyKey FTL (data segment groups, DRAM-resident level
// lists and hash lists, a value log, and the AnyKey+ compaction policy).
//
// Open a simulated device, issue Put/Get/Delete/Scan, and read back both the
// results and the device's behaviour: simulated latencies, flash-operation
// counts by cause, metadata sizes and placement, garbage-collection and
// compaction activity.
//
//	dev, err := anykey.Open(anykey.Options{Design: anykey.DesignAnyKeyPlus})
//	...
//	lat, err := dev.Put([]byte("user:42"), profile)
//	val, lat, err := dev.Get([]byte("user:42"))
//
// Time is simulated: a full benchmark that would take hours on hardware
// completes in seconds, with latency arithmetic driven by the published
// flash timings rather than the host's wall clock.
package anykey

import (
	"errors"
	"fmt"
	"sync"

	"anykey/internal/cache"
	"anykey/internal/core"
	"anykey/internal/device"
	"anykey/internal/fault"
	"anykey/internal/host"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/pink"
	"anykey/internal/sim"
	"anykey/internal/stats"
	"anykey/internal/trace"
	"anykey/internal/txn"
)

// Re-exported simulation and data types.
type (
	// Time is an instant on the simulated clock (nanoseconds from epoch).
	Time = sim.Time
	// Duration is a span of simulated time.
	Duration = sim.Duration
	// Pair is one key-value pair returned by Scan.
	Pair = kv.Pair
	// Stats is the live statistics view of a device.
	Stats = device.Stats
	// MetaStructure is one row of a device's metadata-size report.
	MetaStructure = device.MetaStructure
	// FlashCounters is the per-cause flash operation accounting.
	FlashCounters = nand.Counters
	// Engine is a host submission/completion engine driving a device at a
	// configurable queue depth; see Device.NewEngine.
	Engine = host.Engine
	// Completion is the outcome of one engine request: arrival, issue and
	// completion instants plus any returned data.
	Completion = host.Completion
	// FaultPlan declares the NAND faults to inject: transient read errors,
	// program/erase failures that grow bad blocks, and a one-shot power cut.
	// The zero value injects nothing; see Options.Faults.
	FaultPlan = fault.Plan
	// FaultCounters is the per-cause injected-fault accounting, from
	// Stats().Faults.
	FaultCounters = stats.FaultCounters
	// RecoveryInfo describes what the last PowerCycle's recovery found, from
	// Stats().Recovery.
	RecoveryInfo = stats.RecoveryInfo
	// Tracer collects virtual-time events when tracing is enabled; see
	// Options.Trace and Device.StartTrace. It exports Chrome trace_event
	// JSON (WriteChromeTrace), CSV (WriteCSV) and blame reports (Blame).
	Tracer = trace.Tracer
	// BlameOptions selects which ops a blame report decomposes.
	BlameOptions = trace.BlameOptions
	// BlameReport attributes above-percentile op time to named causes.
	BlameReport = trace.BlameReport
	// MemoryMode selects how the flash array retains programmed pages; see
	// Options.Memory.
	MemoryMode = nand.MemoryMode
	// StoreFootprint is the flash payload store's memory accounting, from
	// Device.Footprint.
	StoreFootprint = nand.StoreFootprint
	// CacheOptions configures the optional host-side DRAM cache; see
	// Options.Cache.
	CacheOptions = cache.Config
	// CacheStats counts the host cache's traffic, from Device.CacheStats.
	CacheStats = cache.Stats
)

// Payload store representations for Options.Memory.
const (
	// MemoryAuto (the default) picks MemoryRaw below 1 GiB of capacity and
	// MemoryFlyweight at or above it.
	MemoryAuto = nand.MemoryAuto
	// MemoryRaw retains every programmed page as its full byte image.
	MemoryRaw = nand.MemoryRaw
	// MemoryFlyweight stores pages compactly, regenerating workload bytes on
	// demand; reads are byte-identical to MemoryRaw, at a small CPU cost.
	MemoryFlyweight = nand.MemoryFlyweight
)

// Errors returned by device operations.
var (
	ErrNotFound   = kv.ErrNotFound
	ErrDeviceFull = kv.ErrDeviceFull
	ErrEmptyKey   = kv.ErrEmptyKey

	// ErrClosed is returned by operations on a device after Close.
	ErrClosed = errors.New("anykey: device closed")

	// ErrInvalidOptions tags Open failures caused by out-of-range Options;
	// test with errors.Is.
	ErrInvalidOptions = errors.New("anykey: invalid options")

	// ErrPowerCut is returned when a FaultPlan's power cut fires mid-operation
	// and by every operation thereafter, until PowerCycle remounts the device
	// from flash. Test with errors.Is.
	ErrPowerCut = errors.New("anykey: power cut")

	// ErrUnsupported tags requests for a modelled-elsewhere capability — for
	// example PowerCycle on a PinK device, whose recovery the simulator does
	// not model. Test with errors.Is.
	ErrUnsupported = errors.New("anykey: unsupported operation")

	// ErrTxnConflict reports an OCC validation failure: a key read by the
	// transaction changed before commit. Cluster.Txn/Incr/Append retry these
	// under TxnOptions' bounded-retry policy; a CompareAndSwap whose expected
	// value no longer matches reports it directly. Test with errors.Is.
	ErrTxnConflict = txn.ErrConflict

	// ErrTxnAborted reports a transaction given up for good — the retry
	// budget was exhausted (the error also matches ErrTxnConflict) or a 2PC
	// phase failed before the commit record was durable. Test with errors.Is.
	ErrTxnAborted = txn.ErrAborted

	// ErrTxnInDoubt reports an atomic batch whose commit point is undecided:
	// the commit record was written but syncing it failed, so it may or may
	// not be durable. The batch is neither committed nor aborted until
	// RecoverTxns resolves it — forward if the record survived, back
	// otherwise. Deliberately does not match ErrTxnAborted. Test with
	// errors.Is.
	ErrTxnInDoubt = txn.ErrInDoubt

	// ErrAtomicUnsupported rejects atomic cross-shard batches on a replicated
	// fleet whose configuration cannot make the commit record decisive: with
	// Factor > 1, read-one reads plus WriteQuorum < Factor would let a lagging
	// replica serve a pre-commit view of a key another replica has applied.
	// Require WriteQuorum == Factor (or ReadRepair) for atomic batches. Test
	// with errors.Is.
	ErrAtomicUnsupported = errors.New("anykey: atomic batches unsupported by this replication configuration")
)

// Design selects which KV-SSD firmware the device runs.
type Design int

// The four designs evaluated in the paper.
const (
	// DesignAnyKeyPlus is AnyKey with the modified log-triggered compaction
	// (§4.6) — the paper's best performer on all workload types.
	DesignAnyKeyPlus Design = iota
	// DesignAnyKey is the base contribution (§4.1–4.5).
	DesignAnyKey
	// DesignAnyKeyMinus is AnyKey without the value log (§6.7 ablation).
	DesignAnyKeyMinus
	// DesignPinK is the state-of-the-art baseline (Fig. 4).
	DesignPinK
)

var designNames = map[Design]string{
	DesignAnyKeyPlus:  "AnyKey+",
	DesignAnyKey:      "AnyKey",
	DesignAnyKeyMinus: "AnyKey-",
	DesignPinK:        "PinK",
}

// String returns the paper's name for the design.
func (d Design) String() string {
	if n, ok := designNames[d]; ok {
		return n
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Options configures a simulated device. The zero value is a valid
// 128 MiB AnyKey+ device with the paper's proportions (see DESIGN.md §2 for
// the scaling argument).
type Options struct {
	Design Design

	// CapacityMB is the raw flash capacity in MiB (default 128). The
	// geometry keeps the paper's 8 channels × 8 chips and 64-page blocks.
	CapacityMB int

	// DRAMBytes is the device DRAM for metadata; default capacity/1000,
	// the paper's 0.1 % ratio.
	DRAMBytes int64

	// PageSize is the flash page size in bytes (default 8192; Fig. 16
	// sweeps 4–16 KiB).
	PageSize int

	// GroupPages is AnyKey's data segment group size in pages (default 32).
	GroupPages int

	// LogFraction is the value log's share of the device (default 0.50,
	// the paper's "half of the remaining capacity"; Fig. 19 sweeps
	// undersized logs of 0.05–0.15). Ignored by PinK and AnyKey−.
	LogFraction float64

	// MemtableBytes is the write-buffer flush threshold (default 32 pages).
	MemtableBytes int64

	// GrowthFactor is the LSM fanout (default 4).
	GrowthFactor int

	// Channels and ChipsPerChannel override the flash parallelism (8×8).
	Channels, ChipsPerChannel int

	// Seed fixes all internal randomness (default 1).
	Seed int64

	// NoHashLists disables AnyKey's per-group hash lists (ablation).
	NoHashLists bool

	// Memory selects the flash array's payload representation. The default
	// MemoryAuto keeps the historical raw images below 1 GiB of capacity and
	// switches to the flyweight store at or above, letting full-scale
	// geometries (64 GB and up) simulate in bounded host memory. Reads are
	// byte-identical across modes; simulation results do not change.
	Memory MemoryMode

	// Cache, when non-nil, puts a host-side DRAM read/write cache with
	// Flashield-style admission control in front of the device. Hits are
	// served at DRAM latency with no flash traffic. Being host DRAM, the
	// cache's contents — and, under write-back, its unsynced writes — do
	// not survive PowerCycle.
	Cache *CacheOptions

	// Faults, when non-nil, injects NAND failure modes per the plan: seeded,
	// deterministic read errors, program/erase failures and an optional
	// one-shot power cut (surfacing as ErrPowerCut). Injected-fault counts
	// appear in Stats().Faults. The injector is attached to the flash array
	// for the device's lifetime, so grown-bad blocks and the op counter
	// survive PowerCycle.
	Faults *FaultPlan

	// Trace, when non-nil, enables event tracing from the first operation:
	// host op lifecycles, flash page operations tagged with their cause,
	// controller-CPU occupancy and background activity spans. Read the
	// collected trace with Device.Trace(). Tracing observes the schedule
	// without changing it, so latencies are identical with it on or off.
	Trace *TraceOptions
}

// TraceOptions sizes the tracer attached by Options.Trace or
// Device.StartTrace. The zero value uses the default ring capacities.
type TraceOptions struct {
	// EventBuffer is the event-ring capacity (default 262144). When full,
	// the oldest events are overwritten.
	EventBuffer int
	// OpBuffer is the op-record ring capacity (default 65536).
	OpBuffer int
}

// DefaultOptions returns the fully normalized default configuration: the
// paper-proportioned 128 MiB AnyKey+ device, with every derived field (DRAM
// budget, memtable threshold, group size, …) filled in. It is exactly what
// the zero Options resolves to, made inspectable.
func DefaultOptions() Options {
	var o Options
	// The zero value validates by construction; Validate only fills fields.
	if err := o.Validate(); err != nil {
		panic(err) // unreachable: the zero Options is documented valid
	}
	return o
}

// Validate checks every field and normalizes zero values to their defaults
// in place, so "unset" resolves to a concrete configuration in exactly one
// place — Open, OpenCluster and any caller wanting to inspect the effective
// configuration all share it. Out-of-range values are reported wrapped in
// ErrInvalidOptions (test with errors.Is); zero values are never rejected.
func (o *Options) Validate() error {
	if err := o.check(); err != nil {
		return err
	}
	if o.CapacityMB == 0 {
		o.CapacityMB = 128
	}
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	if o.Channels == 0 {
		o.Channels = 8
	}
	if o.ChipsPerChannel == 0 {
		o.ChipsPerChannel = 8
	}
	geo, err := o.geometry()
	if err != nil {
		return err
	}
	// The derived defaults below replicate the firmware's internal ones
	// (core.Config.Defaults / pink.Config.Defaults) so that a normalized
	// Options builds a bit-identical device to the zero Options.
	if o.DRAMBytes == 0 {
		o.DRAMBytes = geo.Capacity() / 1000 // the paper's ≈0.1 % ratio
	}
	if o.MemtableBytes == 0 {
		o.MemtableBytes = int64(32 * geo.PageSize)
	}
	if o.GrowthFactor == 0 {
		o.GrowthFactor = 4
	}
	if o.GroupPages == 0 {
		o.GroupPages = 32
		if o.GroupPages > geo.PagesPerBlock {
			o.GroupPages = geo.PagesPerBlock
		}
		if o.GroupPages < 4 {
			o.GroupPages = 4
		}
	}
	if o.GroupPages > geo.PagesPerBlock {
		return fmt.Errorf("%w: GroupPages %d does not fit a %d-page erase block",
			ErrInvalidOptions, o.GroupPages, geo.PagesPerBlock)
	}
	if o.LogFraction == 0 {
		o.LogFraction = 0.50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// check rejects out-of-range option values before any construction, so
// misconfiguration surfaces as a descriptive Open error instead of silent
// misbehaviour downstream. Zero values are never rejected — they mean "use
// the default".
func (o Options) check() error {
	if o.CapacityMB < 0 {
		return fmt.Errorf("%w: CapacityMB %d is negative", ErrInvalidOptions, o.CapacityMB)
	}
	if o.DRAMBytes < 0 {
		return fmt.Errorf("%w: DRAMBytes %d is negative", ErrInvalidOptions, o.DRAMBytes)
	}
	if o.PageSize < 0 {
		return fmt.Errorf("%w: PageSize %d is negative", ErrInvalidOptions, o.PageSize)
	}
	if o.GroupPages < 0 {
		return fmt.Errorf("%w: GroupPages %d is negative", ErrInvalidOptions, o.GroupPages)
	}
	if o.LogFraction != 0 && (o.LogFraction <= 0 || o.LogFraction >= 1) {
		return fmt.Errorf("%w: LogFraction %v outside (0,1)", ErrInvalidOptions, o.LogFraction)
	}
	if o.MemtableBytes < 0 {
		return fmt.Errorf("%w: MemtableBytes %d is negative", ErrInvalidOptions, o.MemtableBytes)
	}
	if o.GrowthFactor < 0 {
		return fmt.Errorf("%w: GrowthFactor %d is negative", ErrInvalidOptions, o.GrowthFactor)
	}
	if o.Channels < 0 || o.ChipsPerChannel < 0 {
		return fmt.Errorf("%w: Channels %d × ChipsPerChannel %d is negative", ErrInvalidOptions, o.Channels, o.ChipsPerChannel)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
		}
	}
	if o.Trace != nil && (o.Trace.EventBuffer < 0 || o.Trace.OpBuffer < 0) {
		return fmt.Errorf("%w: negative trace buffer size %+v", ErrInvalidOptions, *o.Trace)
	}
	if o.Memory < MemoryAuto || o.Memory > MemoryFlyweight {
		return fmt.Errorf("%w: unknown memory mode %d", ErrInvalidOptions, int(o.Memory))
	}
	if c := o.Cache; c != nil {
		if c.CapacityBytes < 0 || c.AdmitAfter < 0 || c.GhostSlots < 0 || c.HitLatency < 0 {
			return fmt.Errorf("%w: negative cache parameter %+v", ErrInvalidOptions, *c)
		}
	}
	return nil
}

// geometry derives the NAND geometry from the friendly options.
func (o Options) geometry() (nand.Geometry, error) {
	capMB := o.CapacityMB
	if capMB == 0 {
		capMB = 128
	}
	pageSize := o.PageSize
	if pageSize == 0 {
		pageSize = 8192
	}
	channels := o.Channels
	if channels == 0 {
		channels = 8
	}
	chips := o.ChipsPerChannel
	if chips == 0 {
		chips = 8
	}
	// Keep the erase-block byte size constant (512 KiB) across page sizes,
	// as flash generations do; otherwise large-page sweeps starve the
	// device of blocks.
	pagesPerBlock := (512 << 10) / pageSize
	if pagesPerBlock < 8 {
		pagesPerBlock = 8
	}
	blockBytes := int64(pageSize) * int64(pagesPerBlock)
	totalBlocks := int64(capMB) << 20 / blockBytes
	perChip := totalBlocks / int64(channels*chips)
	if perChip < 1 {
		return nand.Geometry{}, fmt.Errorf("%w: capacity %d MB too small for %d×%d chips with %d B pages",
			ErrInvalidOptions, capMB, channels, chips, pageSize)
	}
	return nand.Geometry{
		Channels:        channels,
		ChipsPerChannel: chips,
		BlocksPerChip:   int(perChip),
		PagesPerBlock:   pagesPerBlock,
		PageSize:        pageSize,
	}, nil
}

// Device is an open simulated KV-SSD. Its Put/Get/Delete/Scan methods run
// a queue-depth-1 closed loop — each operation is issued when the previous
// one completed — backed by an internal host engine. Drivers that need
// concurrency build their own engine with NewEngine.
//
// The facade operations and StatsSnapshot share one mutex, so a concurrent
// observer (a metrics scraper, a monitoring goroutine) can snapshot the
// device's statistics while another goroutine operates on it. Stats()
// still returns the live, lock-free view for single-goroutine callers.
type Device struct {
	mu     sync.Mutex // serializes facade operations against StatsSnapshot
	impl   device.KVSSD
	eng    *host.Engine // depth-1 engine backing the facade operations
	opts   Options
	inj    *fault.Injector // nil without a fault plan
	tr     *trace.Tracer   // nil unless tracing is enabled
	closed bool
	dead   bool // a power cut fired; only PowerCycle revives the device
}

// openImpl validates-and-normalizes opts and builds the firmware it
// selects. It is the one construction path shared by Open and OpenCluster.
func openImpl(opts *Options) (device.KVSSD, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	geo, err := opts.geometry()
	if err != nil {
		return nil, err
	}
	var impl device.KVSSD
	switch opts.Design {
	case DesignPinK:
		impl, err = pink.New(pink.Config{
			Geometry:      geo,
			DRAMBytes:     opts.DRAMBytes,
			MemtableBytes: opts.MemtableBytes,
			GrowthFactor:  opts.GrowthFactor,
			Memory:        opts.Memory,
			Seed:          opts.Seed,
		})
	case DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus:
		impl, err = core.New(core.Config{
			Geometry:      geo,
			DRAMBytes:     opts.DRAMBytes,
			MemtableBytes: opts.MemtableBytes,
			GrowthFactor:  opts.GrowthFactor,
			GroupPages:    opts.GroupPages,
			LogFraction:   opts.LogFraction,
			Plus:          opts.Design == DesignAnyKeyPlus,
			NoValueLog:    opts.Design == DesignAnyKeyMinus,
			NoHashLists:   opts.NoHashLists,
			Memory:        opts.Memory,
			Seed:          opts.Seed,
		})
	default:
		return nil, fmt.Errorf("%w: unknown design %v", ErrInvalidOptions, opts.Design)
	}
	if err != nil {
		return nil, err
	}
	if opts.Cache != nil {
		impl = cache.Wrap(impl, *opts.Cache)
	}
	return impl, nil
}

// Open builds a device running the selected design.
func Open(opts Options) (*Device, error) {
	impl, err := openImpl(&opts)
	if err != nil {
		return nil, err
	}
	eng, err := host.New(impl, 1)
	if err != nil {
		return nil, err
	}
	d := &Device{impl: impl, eng: eng, opts: opts}
	if opts.Faults != nil && opts.Faults.Enabled() {
		d.inj = fault.New(*opts.Faults)
		d.array().SetInjector(d.inj)
		impl.Stats().Faults = d.inj.Counters
	}
	if opts.Trace != nil {
		d.attachTracer(trace.New(trace.Config{Events: opts.Trace.EventBuffer, Ops: opts.Trace.OpBuffer}))
	}
	return d, nil
}

// attachTracer wires one tracer through every emitting layer: the host
// engine (op lifecycles), the firmware (CPU and background spans) and the
// flash array (page operations).
func (d *Device) attachTracer(tr *trace.Tracer) {
	d.tr = tr
	d.eng.SetTracer(tr)
	attachTracerTo(d.impl, tr)
}

// attachTracerTo wires a tracer through a bare firmware instance and its
// flash array — the device- and cluster-shared half of tracer attachment
// (engines are wired separately, as a cluster runs one per shard).
func attachTracerTo(impl device.KVSSD, tr *trace.Tracer) {
	arrayOf(impl).SetTracer(tr)
	switch impl := unwrap(impl).(type) {
	case *core.Device:
		impl.SetTracer(tr)
	case *pink.Device:
		impl.SetTracer(tr)
	}
}

// unwrap peels the host cache (which has no flash of its own) off a firmware
// instance.
func unwrap(impl device.KVSSD) device.KVSSD {
	if c, ok := impl.(*cache.Cache); ok {
		return c.Inner()
	}
	return impl
}

// Trace returns the device's tracer, or nil when tracing is off. A nil
// *Tracer is safe to use: every method on it is a no-op.
func (d *Device) Trace() *Tracer { return d.tr }

// StartTrace enables tracing mid-life with fresh ring buffers and returns
// the new tracer. If tracing is already on, the existing tracer is kept
// (and returned) rather than discarding its events.
func (d *Device) StartTrace(opts TraceOptions) *Tracer {
	if d.tr == nil {
		d.attachTracer(trace.New(trace.Config{Events: opts.EventBuffer, Ops: opts.OpBuffer}))
	}
	return d.tr
}

// StopTrace detaches and returns the tracer (nil if tracing was off). The
// returned tracer keeps its collected events for export.
func (d *Device) StopTrace() *Tracer {
	tr := d.tr
	if tr != nil {
		d.attachTracer(nil)
	}
	return tr
}

// array returns the flash array beneath whichever firmware is mounted.
func (d *Device) array() *nand.Array { return arrayOf(d.impl) }

// arrayOf returns the flash array beneath a firmware instance.
func arrayOf(impl device.KVSSD) *nand.Array {
	switch impl := unwrap(impl).(type) {
	case *core.Device:
		return impl.Array()
	case *pink.Device:
		return impl.Array()
	}
	panic("anykey: unknown device implementation")
}

// Design returns the firmware the device runs.
func (d *Device) Design() Design { return d.opts.Design }

// Now returns the device's virtual clock.
func (d *Device) Now() Time { return d.eng.Now() }

// NewEngine returns a host submission/completion engine driving this
// device at the given queue depth (≥ 1). The engine owns its own slot
// clocks, starting at the device's current time; interleaving engine
// requests with the device's own Put/Get/Delete/Scan is not supported, as
// each would advance time behind the other's back.
func (d *Device) NewEngine(depth int) (*Engine, error) {
	if d.closed {
		return nil, ErrClosed
	}
	if depth < 1 {
		return nil, fmt.Errorf("%w: engine queue depth %d; need at least 1", ErrInvalidOptions, depth)
	}
	eng, err := host.NewAt(d.impl, depth, d.eng.Now())
	if err != nil {
		return nil, err
	}
	eng.SetTracer(d.tr)
	return eng, nil
}

// Close marks the device closed and eagerly releases the flash payload
// store — the dominant memory of a simulated device — so fleets that cycle
// shards do not accumulate dead flash images until the garbage collector
// notices. Further operations return ErrClosed; statistics stay readable.
// It is idempotent and never fails.
func (d *Device) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.closed {
		d.closed = true
		releaseMemoryOf(d.impl)
	}
	return nil
}

// releaseMemoryOf eagerly frees a firmware instance's page payload store.
func releaseMemoryOf(impl device.KVSSD) {
	if r, ok := unwrap(impl).(interface{ ReleaseMemory() }); ok {
		r.ReleaseMemory()
	}
}

// gate rejects operations on a closed or powered-off device.
func (d *Device) gate() error {
	if d.closed {
		return ErrClosed
	}
	if d.dead {
		return ErrPowerCut
	}
	return nil
}

// catchCut translates an in-flight power-cut panic (raised by the fault
// injector between two flash commands) into ErrPowerCut and marks the device
// dead: its volatile state is gone, and only PowerCycle — which rebuilds the
// firmware from the flash image the cut left behind — revives it.
func (d *Device) catchCut(err *error) {
	if r := recover(); r != nil {
		pc, ok := fault.AsPowerCut(r)
		if !ok {
			panic(r)
		}
		d.dead = true
		d.tr.Instant(trace.BGTrack(trace.CauseRecovery), trace.EvPowerCut,
			trace.CauseRecovery, d.eng.Now(), pc.Op)
		*err = fmt.Errorf("%w (flash op %d)", ErrPowerCut, pc.Op)
	}
}

// Put stores a pair and returns its simulated latency.
func (d *Device) Put(key, value []byte) (lat Duration, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return 0, err
	}
	defer d.catchCut(&err)
	c, err := d.eng.Put(key, value)
	return c.Latency(), err
}

// Get returns the newest value for key and the simulated latency. The
// returned slice is owned by the device and valid until the next operation.
func (d *Device) Get(key []byte) (val []byte, lat Duration, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return nil, 0, err
	}
	defer d.catchCut(&err)
	c, err := d.eng.Get(key)
	return c.Value, c.Latency(), err
}

// Delete removes key and returns the simulated latency.
func (d *Device) Delete(key []byte) (lat Duration, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return 0, err
	}
	defer d.catchCut(&err)
	c, err := d.eng.Delete(key)
	return c.Latency(), err
}

// Scan returns up to n pairs with key ≥ start in key order, and the
// simulated latency of the range query.
func (d *Device) Scan(start []byte, n int) (pairs []Pair, lat Duration, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return nil, 0, err
	}
	defer d.catchCut(&err)
	c, err := d.eng.Scan(start, n)
	return c.Pairs, c.Latency(), err
}

// Sync makes every acknowledged write durable, like an NVMe FLUSH.
func (d *Device) Sync() (lat Duration, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return 0, err
	}
	defer d.catchCut(&err)
	c, err := d.eng.Sync()
	return c.Latency(), err
}

// PowerCycle simulates a power loss and remount: the device's volatile state
// is discarded and rebuilt from flash. AnyKey's entire metadata is derivable
// from the persistent group headers and log pages (see internal/core's
// recovery); writes not covered by a preceding Sync are lost, as on any
// device without a write journal. Recovery tolerates the torn state an
// injected power cut leaves behind — skipped torn tail pages, incomplete
// level epochs and orphaned log values; Stats().Recovery reports what the
// remount found. PinK power-cycling is not modelled.
func (d *Device) PowerCycle() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	c, ok := unwrap(d.impl).(*core.Device)
	if !ok {
		return fmt.Errorf("%w: power-cycle recovery is only modelled for AnyKey designs", ErrUnsupported)
	}
	geo, err := d.opts.geometry()
	if err != nil {
		return err
	}
	reopened, err := core.Reopen(core.Config{
		Geometry:      geo,
		DRAMBytes:     d.opts.DRAMBytes,
		MemtableBytes: d.opts.MemtableBytes,
		GrowthFactor:  d.opts.GrowthFactor,
		GroupPages:    d.opts.GroupPages,
		LogFraction:   d.opts.LogFraction,
		Plus:          d.opts.Design == DesignAnyKeyPlus,
		NoValueLog:    d.opts.Design == DesignAnyKeyMinus,
		NoHashLists:   d.opts.NoHashLists,
		Seed:          d.opts.Seed,
		Tracer:        d.tr,
	}, c.Array())
	if err != nil {
		return err
	}
	// A host cache is DRAM: the power cut emptied it. The remount starts
	// with a cold one.
	var impl device.KVSSD = reopened
	if d.opts.Cache != nil {
		impl = cache.Wrap(reopened, *d.opts.Cache)
	}
	// The remounted firmware starts fresh, but time keeps flowing: the new
	// engine's clocks resume where the old device's left off.
	eng, err := host.NewAt(impl, 1, d.eng.Now())
	if err != nil {
		return err
	}
	d.impl = impl
	d.eng = eng
	d.dead = false
	// The tracer, like the injector, spans the cycle: the new engine keeps
	// appending op records to the same rings.
	eng.SetTracer(d.tr)
	// The injector lives on the flash array, which survived the cycle; only
	// the fresh Stats object needs its counter view re-attached.
	if d.inj != nil {
		reopened.Stats().Faults = d.inj.Counters
	}
	return nil
}

// Stats returns the device's live statistics. The pointer updates as the
// simulation advances and is NOT safe to read while another goroutine
// operates on the device — concurrent observers use StatsSnapshot.
func (d *Device) Stats() *Stats { return d.impl.Stats() }

// StatsSnapshot is a point-in-time copy of a device's statistics with every
// lazily-computed field resolved, safe to read while other goroutines
// operate on the device (the copy is taken under the same lock the
// operations hold).
type StatsSnapshot struct {
	Flash FlashCounters

	TreeCompactions, LogCompactions, ChainedCompactions int64
	GCRuns, GCRelocations                               int64

	LiveKeys, LiveBytes int64

	DRAMCapacity, DRAMUsed int64

	// Faults is zero when the device runs without a fault plan.
	Faults FaultCounters

	Recovery RecoveryInfo
}

// StatsSnapshot copies the device's statistics under the operation lock.
func (d *Device) StatsSnapshot() StatsSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.impl.Stats()
	out := StatsSnapshot{
		TreeCompactions:    st.TreeCompactions,
		LogCompactions:     st.LogCompactions,
		ChainedCompactions: st.ChainedCompactions,
		GCRuns:             st.GCRuns,
		GCRelocations:      st.GCRelocations,
		LiveKeys:           st.LiveKeys,
		LiveBytes:          st.LiveBytes,
		Recovery:           st.Recovery,
	}
	if st.Flash != nil {
		out.Flash = st.Flash()
	}
	if st.DRAMCapacity != nil {
		out.DRAMCapacity = st.DRAMCapacity()
	}
	if st.DRAMUsed != nil {
		out.DRAMUsed = st.DRAMUsed()
	}
	if st.Faults != nil {
		out.Faults = st.Faults()
	}
	return out
}

// Metadata reports every metadata structure's size and placement.
func (d *Device) Metadata() []MetaStructure { return d.impl.Metadata() }

// Flash returns the flash operation counters (reads/writes by cause,
// erases).
func (d *Device) Flash() FlashCounters { return d.impl.Stats().Flash() }

// Footprint returns the flash payload store's memory accounting: what a
// raw store would retain versus what the configured store actually does.
func (d *Device) Footprint() StoreFootprint { return d.array().Footprint() }

// CacheStats returns the host cache's counters; ok is false when the device
// was opened without Options.Cache.
func (d *Device) CacheStats() (st CacheStats, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, isCache := d.impl.(*cache.Cache); isCache {
		return c.CacheStats(), true
	}
	return CacheStats{}, false
}
