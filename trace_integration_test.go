package anykey

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// tracedWorkload drives enough mixed traffic through a traced device to
// force flushes and compactions, and returns the device.
func tracedWorkload(t *testing.T, design Design) *Device {
	t.Helper()
	dev, err := Open(Options{Design: design, CapacityMB: 32, Trace: &TraceOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	val := bytes.Repeat([]byte{0xAB}, 200)
	for i := 0; i < 4000; i++ {
		k := []byte(fmt.Sprintf("trace-key-%06d", i%1500))
		if _, err := dev.Put(k, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if i%3 == 0 {
			if _, _, err := dev.Get(k); err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
		}
	}
	return dev
}

// TestBlameAttributionCoverage is the acceptance gate of the blame report:
// on a real traced run, every above-P99 operation's queue+service time must
// be at least 95% attributed to named causes — CauseUnknown may hold at
// most 5%, per op and in aggregate.
func TestBlameAttributionCoverage(t *testing.T) {
	for _, design := range []Design{DesignAnyKeyPlus, DesignPinK} {
		t.Run(design.String(), func(t *testing.T) {
			dev := tracedWorkload(t, design)
			rep := dev.Trace().Blame(BlameOptions{Percentile: 99, MaxOps: 1 << 20})
			if rep.BlamedOps == 0 {
				t.Fatal("no ops above P99; workload too small to exercise blame")
			}
			if len(rep.Ops) != rep.BlamedOps {
				t.Fatalf("detail rows %d != blamed ops %d (raise MaxOps)", len(rep.Ops), rep.BlamedOps)
			}
			if cov := rep.Coverage(); cov < 0.95 {
				t.Fatalf("aggregate coverage %.3f < 0.95\n%s", cov, rep)
			}
			for _, b := range rep.Ops {
				if b.Named() < 0.95 {
					unknown := b.Shares[len(b.Shares)-1] // CauseUnknown is the last bucket
					t.Fatalf("op seq=%d lat=%v named %.3f < 0.95 (unknown=%v)",
						b.Op.Seq, b.Total, b.Named(), unknown)
				}
			}
		})
	}
}

// TestChromeExportOfRealTrace validates the Chrome trace_event export of a
// real (not synthetic) trace: it must parse as JSON and every record must
// carry the schema's required fields.
func TestChromeExportOfRealTrace(t *testing.T) {
	dev := tracedWorkload(t, DesignAnyKeyPlus)
	var buf bytes.Buffer
	if err := dev.Trace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) < 1000 {
		t.Fatalf("only %d trace events; instrumentation looks disconnected", len(f.TraceEvents))
	}
	for i, ev := range f.TraceEvents {
		if ev.Ph == "" || ev.Name == "" || ev.Pid <= 0 {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		if ev.Ph == "X" && (ev.Ts < 0 || ev.Dur < 0) {
			t.Fatalf("event %d: negative ts/dur: %+v", i, ev)
		}
	}
}

// TestTracerSurvivesPowerCycle: the tracer must stay attached across a
// power cycle (like the fault injector) and record the recovery itself.
func TestTracerSurvivesPowerCycle(t *testing.T) {
	dev := tracedWorkload(t, DesignAnyKeyPlus)
	tr := dev.Trace()
	if _, err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerCycle(); err != nil {
		t.Fatal(err)
	}
	if dev.Trace() != tr {
		t.Fatal("power cycle swapped or dropped the tracer")
	}
	var recovery int
	for _, ev := range tr.Events() {
		if ev.Cause.String() == "recovery" {
			recovery++
		}
	}
	if recovery == 0 {
		t.Fatal("no recovery-tagged events after power cycle")
	}
	// The revived device must keep tracing.
	before := tr.EventCount()
	dropped := tr.DroppedEvents()
	if _, err := dev.Put([]byte("post-cycle"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if tr.EventCount() == before && tr.DroppedEvents() == dropped {
		t.Fatal("no events recorded after power cycle")
	}
	// And ops must keep flowing into the op ring.
	ops := tr.Ops()
	if len(ops) == 0 || ops[len(ops)-1].Kind.String() != "put" {
		t.Fatal("post-cycle op not recorded")
	}
}

// TestStartStopTrace exercises mid-life enable/disable.
func TestStartStopTrace(t *testing.T) {
	dev, err := Open(Options{CapacityMB: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if dev.Trace() != nil {
		t.Fatal("untraced device has a tracer")
	}
	if _, err := dev.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	tr := dev.StartTrace(TraceOptions{EventBuffer: 1 << 12, OpBuffer: 1 << 8})
	if tr == nil || dev.Trace() != tr {
		t.Fatal("StartTrace did not attach")
	}
	if again := dev.StartTrace(TraceOptions{}); again != tr {
		t.Fatal("second StartTrace replaced the live tracer")
	}
	if _, err := dev.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops()) == 0 {
		t.Fatal("no ops recorded while tracing on")
	}
	got := dev.StopTrace()
	if got != tr || dev.Trace() != nil {
		t.Fatal("StopTrace did not detach")
	}
	n := tr.EventCount()
	if _, err := dev.Put([]byte("c"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	if tr.EventCount() != n {
		t.Fatal("detached tracer still collecting")
	}
}
