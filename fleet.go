package anykey

import (
	"fmt"

	"anykey/internal/cluster/fleet"
)

// Fleet-facing re-exports. These only apply to a Cluster opened with
// ClusterOptions.Replication.Factor ≥ 1.
type (
	// ReplicationOptions selects the replica protocol: Factor (R), the
	// WriteQuorum (W ≤ R) a write needs for acknowledgment, and the
	// ReadMode.
	ReplicationOptions = fleet.Replication
	// FleetReadMode selects read-one-with-fallback or read-repair.
	FleetReadMode = fleet.ReadMode
	// FleetKillCause records what killed a member device.
	FleetKillCause = fleet.KillCause
	// FleetStats is the fleet's merged statistics view: the cluster rollup
	// plus replication/migration/rebuild counters and per-member lifecycle
	// rows.
	FleetStats = fleet.Stats
	// ReplicationStats are the fleet-level replication counters.
	ReplicationStats = fleet.ReplStats
	// Migration is an in-flight topology change (AddShard/RemoveShard); it
	// must be stepped (or Run) to completion while traffic keeps flowing.
	Migration = fleet.Migration
	// Rebuild is an in-flight device rebuild after KillShard.
	Rebuild = fleet.Rebuild
	// MigrationStatus describes the in-flight topology change, if any.
	MigrationStatus = fleet.MigrationStatus
	// FleetOpResult is one replicated operation's full outcome, exposed by
	// the fleet-native entry points for drivers that need per-replica
	// detail (the harness's durability oracle does).
	FleetOpResult = fleet.OpResult
	// ArrivalFunc maps a member ID to an arrival instant in that member's
	// clock domain, for open-loop replicated submission.
	ArrivalFunc = fleet.ArrivalFunc
)

// Read modes for ReplicationOptions.ReadMode.
const (
	// ReadOne serves from the first alive owner, falling back on a down
	// replica or a miss (default).
	ReadOne = fleet.ReadOne
	// ReadRepair reads every alive owner and re-writes the serving value
	// onto divergent replicas.
	ReadRepair = fleet.ReadRepair
)

// Kill causes for Cluster.KillShard.
const (
	// KillPowerCut kills the device as a power cut mid-traffic would.
	KillPowerCut = fleet.KillPowerCut
	// KillGrownBad kills the device as grown-bad block exhaustion would.
	KillGrownBad = fleet.KillGrownBad
)

// Fleet sentinel errors.
var (
	// ErrQuorumNotMet reports a write acknowledged by fewer than
	// WriteQuorum alive replicas (the replicas that executed keep it).
	ErrQuorumNotMet = fleet.ErrQuorumNotMet
	// ErrShardDown reports an operation whose every replica is dead.
	ErrShardDown = fleet.ErrShardDown
	// ErrMigrationInProgress rejects a topology change while another
	// migration is still streaming keys.
	ErrMigrationInProgress = fleet.ErrMigrationInProgress
)

// fleetGate rejects fleet-only calls on closed or non-replicated clusters.
func (c *Cluster) fleetGate() error {
	if err := c.gate(); err != nil {
		return err
	}
	if c.f == nil {
		return fmt.Errorf("%w: cluster opened without Replication (set ClusterOptions.Replication.Factor)", ErrUnsupported)
	}
	return nil
}

// Replication returns the replica protocol in force (zero Factor on a
// non-replicated cluster).
func (c *Cluster) Replication() ReplicationOptions {
	if c.f == nil {
		return ReplicationOptions{}
	}
	return c.f.Replication()
}

// AddShard brings a fresh member device into the ring — same configuration
// as the initial shards, seeded by its member ID — and returns the
// migration streaming the ~1/N key fraction the new topology assigns it.
// Traffic keeps flowing while the caller steps the migration; reads
// double-read through old owners until it commits.
func (c *Cluster) AddShard() (*Migration, error) {
	if err := c.fleetGate(); err != nil {
		return nil, err
	}
	return c.f.AddShard()
}

// RemoveShard takes member id out of the ring, streaming its keys to their
// new owners before the member retires at the migration's commit.
func (c *Cluster) RemoveShard(id int) (*Migration, error) {
	if err := c.fleetGate(); err != nil {
		return nil, err
	}
	return c.f.RemoveShard(id)
}

// KillShard kills member id's device mid-traffic (power cut or grown-bad
// exhaustion): its contents become unavailable, surviving replicas serve
// reads, and writes keep acknowledging while WriteQuorum alive owners
// remain.
func (c *Cluster) KillShard(id int, cause FleetKillCause) error {
	if err := c.fleetGate(); err != nil {
		return err
	}
	return c.f.KillShard(id, cause)
}

// RebuildShard replaces a dead member's hardware and returns the steppable
// refill from the surviving replicas' scans. The member rejoins the read
// path and the write quorum when the refill drains.
func (c *Cluster) RebuildShard(id int) (*Rebuild, error) {
	if err := c.fleetGate(); err != nil {
		return nil, err
	}
	return c.f.RebuildShard(id)
}

// Migrating returns the in-flight topology change's status.
func (c *Cluster) Migrating() MigrationStatus {
	if c.f == nil {
		return MigrationStatus{}
	}
	return c.f.Migrating()
}

// ShardState returns member id's lifecycle state ("alive", "dead",
// "rebuilding", "retired") and, for dead members, the kill cause.
func (c *Cluster) ShardState(id int) (state, cause string, err error) {
	if err := c.fleetGate(); err != nil {
		return "", "", err
	}
	return c.f.State(id)
}

// FleetStats returns the full fleet statistics view: the Stats() rollup
// plus replication counters and per-member lifecycle rows.
func (c *Cluster) FleetStats() (FleetStats, error) {
	if err := c.fleetGate(); err != nil {
		return FleetStats{}, err
	}
	return c.f.CollectStats(), nil
}

// FleetPutAt is the fleet-native open-loop Put: per-replica arrival
// instants and the full per-replica outcome. Drivers that only need the
// single-copy shape should use PutAt.
func (c *Cluster) FleetPutAt(arrival ArrivalFunc, key, value []byte) (FleetOpResult, error) {
	if err := c.fleetGate(); err != nil {
		return FleetOpResult{}, err
	}
	return c.f.PutAt(arrival, key, value), nil
}

// FleetGetAt is the fleet-native open-loop Get.
func (c *Cluster) FleetGetAt(arrival ArrivalFunc, key []byte) (FleetOpResult, error) {
	if err := c.fleetGate(); err != nil {
		return FleetOpResult{}, err
	}
	return c.f.GetAt(arrival, key), nil
}

// FleetDeleteAt is the fleet-native open-loop Delete.
func (c *Cluster) FleetDeleteAt(arrival ArrivalFunc, key []byte) (FleetOpResult, error) {
	if err := c.fleetGate(); err != nil {
		return FleetOpResult{}, err
	}
	return c.f.DeleteAt(arrival, key), nil
}

// Fleet exposes the underlying fleet to internal drivers (the harness runs
// its durability oracle against per-replica results). Nil on a
// non-replicated cluster.
func (c *Cluster) Fleet() *fleet.Fleet { return c.f }
